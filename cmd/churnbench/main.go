// Command churnbench measures the delta compiler against recompilation
// under overlay churn: one clustered P2P instance (the A3 benchmark
// class), a pre-validated stream of single-link mutations — capacity
// flaps mostly, with peers' links joining and leaving mixed in — and two
// timed phases over the identical stream. The delta phase chains
// Plan.Mutate calls; the cold phase compiles every mutated graph from
// scratch. Both evaluate after every step, and every evaluation must be
// bit-identical between the phases or the run fails.
//
// The summary is a flat metric map in the benchgate vocabulary:
//
//	{"churn_stream_ns_per_mutation": ..., "cold_recompile_ns_per_mutation": ...,
//	 "delta_vs_cold_speedup": ..., "mutations": ...}
//
// The CI bench gate enforces a floor on delta_vs_cold_speedup and tracks
// churn_stream_ns_per_mutation against the committed baseline.
//
// Usage:
//
//	churnbench -side 6 -mutations 200 -runs 3 -out churn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"flowrel"
	"flowrel/internal/overlay"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "churnbench:", err)
		os.Exit(1)
	}
}

// step is one pre-validated stream element: the mutation, the graph it
// produces, and the reliability the mutated instance must evaluate to.
type step struct {
	mut  flowrel.Mutation
	g    *flowrel.Graph
	want float64
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("churnbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		side      = fs.Int("side", 6, "cluster side size of the A3 instance")
		mutations = fs.Int("mutations", 200, "stream length")
		runs      = fs.Int("runs", 3, "timed repetitions; the fastest run of each phase counts")
		seed      = fs.Int64("seed", 6, "stream PRNG seed")
		out       = fs.String("out", "", "write the summary JSON here ('' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	o, err := overlay.Clustered(*side, *side+3, 2, 2, 2, 0.1, int64(*side))
	if err != nil {
		return err
	}
	g, dem := o.G, o.Demand(o.Peers[len(o.Peers)-1])

	// The plan cache would absorb repeated structures (a capacity that
	// flaps back, the second timed run); disable it so both phases pay
	// their full compile work every step.
	flowrel.SetPlanCacheCapacity(0)
	defer flowrel.SetPlanCacheCapacity(64)

	steps, err := buildStream(g, dem, *mutations, *seed)
	if err != nil {
		return err
	}

	base, err := flowrel.CompilePlan(g, dem, flowrel.Config{})
	if err != nil {
		return err
	}

	bestDelta, bestCold := int64(math.MaxInt64), int64(math.MaxInt64)
	for r := 0; r < *runs; r++ {
		d, err := timeDelta(base, steps)
		if err != nil {
			return err
		}
		c, err := timeCold(dem, steps)
		if err != nil {
			return err
		}
		if d < bestDelta {
			bestDelta = d
		}
		if c < bestCold {
			bestCold = c
		}
	}

	n := int64(len(steps))
	summary := map[string]float64{
		"churn_stream_ns_per_mutation":   float64(bestDelta) / float64(n),
		"cold_recompile_ns_per_mutation": float64(bestCold) / float64(n),
		"delta_vs_cold_speedup":          float64(bestCold) / float64(bestDelta),
		"mutations":                      float64(n),
	}
	blob, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(*out, blob, 0o644)
}

// buildStream pre-validates a mutation stream against cold compiles:
// every kept step compiles and evaluates, so the timed phases never hit
// an error path. Mutations are capacity-biased (the common churn event),
// avoid the current bottleneck cut, and removes only take links a
// previous step added — the base overlay keeps its shape.
func buildStream(g *flowrel.Graph, dem flowrel.Demand, n int, seed int64) ([]step, error) {
	rng := rand.New(rand.NewSource(seed))
	cur, err := flowrel.CompilePlan(g, dem, flowrel.Config{})
	if err != nil {
		return nil, err
	}
	var steps []step
	var added []flowrel.EdgeID
	for len(steps) < n {
		mut, ok := proposeMutation(rng, g, cur.Cut(), added)
		if !ok {
			continue
		}
		g2, remap, err := mut.Apply(g)
		if err != nil {
			continue
		}
		cold, err := flowrel.CompilePlan(g2, dem, flowrel.Config{})
		if err != nil {
			continue // the mutation broke the instance; draw another
		}
		want, err := cold.Eval(nil)
		if err != nil {
			continue
		}
		// Carry the added-link bookkeeping through the renumbering.
		next := added[:0]
		for _, id := range added {
			if nid := remap[id]; nid >= 0 {
				next = append(next, nid)
			}
		}
		added = next
		if mut.Kind == flowrel.MutateAdd {
			added = append(added, flowrel.EdgeID(g2.NumEdges()-1))
		}
		steps = append(steps, step{mut: mut, g: g2, want: want})
		g, cur = g2, cold
	}
	return steps, nil
}

// proposeMutation draws one candidate churn event against g.
func proposeMutation(rng *rand.Rand, g *flowrel.Graph, cut []flowrel.EdgeID, added []flowrel.EdgeID) (flowrel.Mutation, bool) {
	onCut := func(id flowrel.EdgeID) bool {
		for _, c := range cut {
			if c == id {
				return true
			}
		}
		return false
	}
	switch roll := rng.Intn(10); {
	case roll < 7: // capacity flap off the cut
		id := flowrel.EdgeID(rng.Intn(g.NumEdges()))
		if onCut(id) {
			return flowrel.Mutation{}, false
		}
		// Always a real change — a no-op "set to the current value" would
		// flatter the delta side, which recognizes it in O(1).
		c := 1
		if g.Edge(id).Cap == 1 {
			c = 2
		}
		return flowrel.Mutation{Kind: flowrel.MutateCapacity, Link: id, Cap: c}, true
	case roll < 8 || len(added) == 0: // a peer link joins
		u := flowrel.NodeID(rng.Intn(g.NumNodes()))
		v := flowrel.NodeID(rng.Intn(g.NumNodes()))
		if u == v {
			return flowrel.Mutation{}, false
		}
		return flowrel.Mutation{Kind: flowrel.MutateAdd, U: u, V: v, Cap: 1 + rng.Intn(2), PFail: 0.05 + 0.3*rng.Float64()}, true
	default: // a previously joined link leaves
		return flowrel.Mutation{Kind: flowrel.MutateRemove, Link: added[rng.Intn(len(added))]}, true
	}
}

// timeDelta chains the stream through Plan.Mutate. Only the Mutate calls
// are timed — both phases pay the identical Eval, which verifies every
// successor bit for bit against the cold answers but measures evaluation,
// not compile strategy.
func timeDelta(base *flowrel.Plan, steps []step) (int64, error) {
	p := base
	var total int64
	for i := range steps {
		start := time.Now()
		child, err := p.Mutate(steps[i].mut)
		total += time.Since(start).Nanoseconds()
		if err != nil {
			return 0, fmt.Errorf("delta step %d (%v): %w", i, steps[i].mut, err)
		}
		r, err := child.Eval(nil)
		if err != nil {
			return 0, fmt.Errorf("delta step %d eval: %w", i, err)
		}
		if math.Float64bits(r) != math.Float64bits(steps[i].want) {
			return 0, fmt.Errorf("delta step %d: reliability %v, cold compile says %v — delta compile diverged", i, r, steps[i].want)
		}
		p = child
	}
	return total, nil
}

// timeCold recompiles every mutated graph from scratch (the stream's
// Apply work is pre-paid for both phases, so the comparison is compile
// strategy against compile strategy; Eval verification stays outside the
// clock here exactly as in timeDelta).
func timeCold(dem flowrel.Demand, steps []step) (int64, error) {
	var total int64
	for i := range steps {
		start := time.Now()
		p, err := flowrel.CompilePlan(steps[i].g, dem, flowrel.Config{})
		total += time.Since(start).Nanoseconds()
		if err != nil {
			return 0, fmt.Errorf("cold step %d: %w", i, err)
		}
		r, err := p.Eval(nil)
		if err != nil {
			return 0, fmt.Errorf("cold step %d eval: %w", i, err)
		}
		if math.Float64bits(r) != math.Float64bits(steps[i].want) {
			return 0, fmt.Errorf("cold step %d: reliability %v, want %v", i, r, steps[i].want)
		}
	}
	return total, nil
}
