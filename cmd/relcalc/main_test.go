package main

import (
	"encoding/json"
	"strings"
	"testing"

	"flowrel"
)

const figure2Text = `
node s
node t
edge s a 1 0.10
edge s b 1 0.10
edge a x 1 0.10
edge b x 1 0.10
edge x y 1 0.05
edge y c 1 0.10
edge y d 1 0.10
edge c t 1 0.10
edge d t 1 0.10
demand s t 1
`

func runCLI(t *testing.T, args []string, stdin string) (string, error) {
	t.Helper()
	// Each real CLI invocation is a fresh process with an empty plan
	// cache; mirror that so budgeted runs are not answered from plans
	// compiled by earlier tests in this binary.
	flowrel.ResetPlanCache()
	var out strings.Builder
	err := run(args, strings.NewReader(stdin), &out)
	return out.String(), err
}

func TestEnginesProduceSameValue(t *testing.T) {
	want := "reliability = 0.882648049500"
	for _, eng := range []string{"auto", "core", "naive", "naive-gray", "factoring"} {
		out, err := runCLI(t, []string{"-engine", eng}, figure2Text)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !strings.Contains(out, want) {
			t.Fatalf("%s output missing %q:\n%s", eng, want, out)
		}
	}
}

func TestExactEngine(t *testing.T) {
	out, err := runCLI(t, []string{"-engine", "exact"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exact rational") || !strings.Contains(out, "0.882648049500") {
		t.Fatalf("output: %s", out)
	}
}

func TestMonteCarloEngine(t *testing.T) {
	out, err := runCLI(t, []string{"-engine", "montecarlo", "-samples", "20000"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "95% CI") {
		t.Fatalf("output: %s", out)
	}
}

func TestChainEngine(t *testing.T) {
	out, err := runCLI(t, []string{"-engine", "chain", "-stats"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "engine chain") || !strings.Contains(out, "max-flow calls") {
		t.Fatalf("output: %s", out)
	}
}

func TestAuxiliaryOutputs(t *testing.T) {
	out, err := runCLI(t, []string{"-bounds", "-states", "2", "-dist", "-stats", "-reduce", "-importance"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bounds: [", "states(≤2 failures)", "P(rate = 1)", "reduced:", "link importance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	out, err := runCLI(t, []string{"-json"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Reliability float64 `json:"reliability"`
		Engine      string  `json:"engine"`
		Bottleneck  *struct {
			K int `json:"k"`
		} `json:"bottleneck"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if parsed.Engine != "core" || parsed.Bottleneck == nil || parsed.Bottleneck.K != 1 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if diff := parsed.Reliability - 0.8826480495; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("reliability = %v", parsed.Reliability)
	}
}

func TestPartialInterval(t *testing.T) {
	out, err := runCLI(t, []string{"-engine", "factoring", "-max-configs", "4", "-p", "1"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reliability ∈ [") || !strings.Contains(out, "partial:") {
		t.Fatalf("budgeted run output missing partial interval:\n%s", out)
	}
}

func TestPartialMonteCarlo(t *testing.T) {
	out, err := runCLI(t, []string{"-engine", "montecarlo", "-samples", "1000000", "-max-configs", "5000"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "partial: stopped after") {
		t.Fatalf("budgeted Monte Carlo output missing partial note:\n%s", out)
	}
}

func TestPartialJSON(t *testing.T) {
	out, err := runCLI(t, []string{"-json", "-max-configs", "2"}, figure2Text)
	if err != nil {
		t.Fatalf("partial JSON run must exit cleanly: %v", err)
	}
	var parsed struct {
		Partial bool    `json:"partial"`
		Lo      float64 `json:"lo"`
		Hi      float64 `json:"hi"`
		Rung    string  `json:"rung"`
		Reason  string  `json:"reason"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if !parsed.Partial || parsed.Rung == "" || parsed.Reason == "" {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed.Lo > parsed.Hi || parsed.Lo < 0 || parsed.Hi > 1 {
		t.Fatalf("invalid interval [%g, %g]", parsed.Lo, parsed.Hi)
	}
	if want := 0.8826480495; want < parsed.Lo-1e-9 || want > parsed.Hi+1e-9 {
		t.Fatalf("interval [%g, %g] misses true reliability %g", parsed.Lo, parsed.Hi, want)
	}
}

func TestDOTOutput(t *testing.T) {
	out, err := runCLI(t, []string{"-dot"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "color=red") {
		t.Fatalf("DOT output: %s", out)
	}
}

func TestDemandOverride(t *testing.T) {
	noDemand := strings.Replace(figure2Text, "demand s t 1", "", 1)
	if _, err := runCLI(t, nil, noDemand); err == nil {
		t.Fatal("missing demand accepted")
	}
	out, err := runCLI(t, []string{"-s", "s", "-t", "t", "-d", "1"}, noDemand)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.882648049500") {
		t.Fatalf("output: %s", out)
	}
	if _, err := runCLI(t, []string{"-s", "nope"}, figure2Text); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := runCLI(t, []string{"-t", "nope"}, figure2Text); err == nil {
		t.Fatal("unknown sink accepted")
	}
}

func TestReadFromFile(t *testing.T) {
	out, err := runCLI(t, []string{"../../testdata/figure4.g"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.922455256860") {
		t.Fatalf("output: %s", out)
	}
	if _, err := runCLI(t, []string{"/nonexistent.g"}, ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := runCLI(t, []string{"-engine", "frobnicate"}, figure2Text); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := runCLI(t, nil, "garbage input"); err == nil {
		t.Fatal("garbage graph accepted")
	}
	if _, err := runCLI(t, []string{"-badflag"}, figure2Text); err == nil {
		t.Fatal("bad flag accepted")
	}
}
