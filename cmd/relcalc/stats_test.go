package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// keyPaths flattens a decoded JSON value into the sorted set of key
// paths it contains. Array elements contribute a "path[]" marker plus
// the union of their element keys, so the shape comparison is
// independent of element order and count (which vary run to run).
func keyPaths(prefix string, v any, out map[string]bool) {
	switch val := v.(type) {
	case map[string]any:
		for k, sub := range val {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			keyPaths(p, sub, out)
		}
	case []any:
		out[prefix+"[]"] = true
		for _, sub := range val {
			keyPaths(prefix+"[]", sub, out)
		}
	}
}

// TestStatsJSONShape locks the field layout of `relcalc -json -stats`:
// consumers parse this output, so key renames and removals must show up
// as a diff against the golden file. Values are volatile (timings,
// counts); only the key structure is compared.
func TestStatsJSONShape(t *testing.T) {
	out, err := runCLI(t, []string{"-json", "-stats"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	paths := map[string]bool{}
	keyPaths("", decoded, paths)
	var got []string
	for p := range paths {
		got = append(got, p)
	}
	sort.Strings(got)
	gotText := strings.Join(got, "\n") + "\n"

	golden := filepath.Join("testdata", "stats_shape.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(gotText), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if gotText != string(want) {
		t.Errorf("-json -stats key shape changed.\ngot:\n%s\nwant:\n%s\n(run with UPDATE_GOLDEN=1 to accept)", gotText, want)
	}
}

// TestServeMode exercises the -serve debug endpoints end to end: the
// expvar page must carry the solver metric trees and the pprof index
// must be mounted.
func TestServeMode(t *testing.T) {
	ds, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	for _, want := range []string{`"flowrel.stats"`, `"flowrel.plancache"`, `"hits"`} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %s", want)
		}
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := decoded["flowrel.stats"]; !ok {
		t.Error("flowrel.stats not published")
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
}

// TestServeModeOwnsItsMux pins the fix for the DefaultServeMux fight:
// two debug servers must start in one process (each owns a private mux,
// so the second registration no longer panics or cross-serves), and
// handlers registered on http.DefaultServeMux must NOT leak into the
// debug server's routing.
func TestServeModeOwnsItsMux(t *testing.T) {
	a, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("second debug server in one process: %v", err)
	}
	defer b.Close()

	for _, ds := range []*debugServer{a, b} {
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", ds.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s /debug/vars: status %d", ds.Addr(), resp.StatusCode)
		}
	}

	// A stray global registration must stay invisible to the debug mux.
	http.HandleFunc("/relcalc-test-global-handler", func(w http.ResponseWriter, r *http.Request) {})
	resp, err := http.Get(fmt.Sprintf("http://%s/relcalc-test-global-handler", a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("global DefaultServeMux handler leaked into the debug server (status %d, want 404)", resp.StatusCode)
	}
}

// TestServeFlagRuns checks the -serve flag path: the computation runs,
// prints its result, and the (stubbed) wait returns.
func TestServeFlagRuns(t *testing.T) {
	old := serveWait
	serveWait = func() {}
	defer func() { serveWait = old }()

	out, err := runCLI(t, []string{"-serve", "127.0.0.1:0"}, figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reliability = 0.882648049500") {
		t.Errorf("-serve run missing result:\n%s", out)
	}
}
