package main

import (
	"net"
	"net/http"
	"os"
	"os/signal"

	"flowrel"
	"flowrel/internal/debughttp"
)

// debugServer serves the process debug endpoints — /debug/vars (expvar,
// including the flowrel.stats and flowrel.plancache trees) and
// /debug/pprof/* — from its own mux. Not http.DefaultServeMux: the
// default mux is a process-wide singleton, so registering there would
// fight with any other server in the process (relcalcd mounts the same
// debug tree, and the test binary starts several debug servers).
type debugServer struct {
	ln  net.Listener
	srv *http.Server
}

// startDebugServer publishes the solver metrics to expvar and begins
// serving a private debug mux on addr (pass "127.0.0.1:0" for an
// ephemeral port; Addr reports the one chosen).
func startDebugServer(addr string) (*debugServer, error) {
	flowrel.PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: debughttp.NewMux()}
	go srv.Serve(ln) //nolint:errcheck // Serve returns when Close is called
	return &debugServer{ln: ln, srv: srv}, nil
}

// Addr is the bound listen address, e.g. "127.0.0.1:41227".
func (s *debugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *debugServer) Close() error { return s.srv.Close() }

// serveWait blocks the -serve mode until the user interrupts; tests
// replace it to return immediately.
var serveWait = func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	defer signal.Stop(ch)
	<-ch
}
