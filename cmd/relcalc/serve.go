package main

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"

	"flowrel"
)

// debugServer serves the process debug endpoints — /debug/vars (expvar,
// including the flowrel.stats and flowrel.plancache trees) and
// /debug/pprof/* — from the default mux.
type debugServer struct {
	ln  net.Listener
	srv *http.Server
}

// startDebugServer publishes the solver metrics to expvar and begins
// serving the default mux on addr (pass "127.0.0.1:0" for an ephemeral
// port; Addr reports the one chosen).
func startDebugServer(addr string) (*debugServer, error) {
	flowrel.PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns when Close is called
	return &debugServer{ln: ln, srv: srv}, nil
}

// Addr is the bound listen address, e.g. "127.0.0.1:41227".
func (s *debugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *debugServer) Close() error { return s.srv.Close() }

// serveWait blocks the -serve mode until the user interrupts; tests
// replace it to return immediately.
var serveWait = func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	defer signal.Stop(ch)
	<-ch
}
