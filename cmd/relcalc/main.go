// Command relcalc computes the flow reliability of a network described in
// the flowrel text format.
//
// Usage:
//
//	relcalc [flags] [graph-file]
//
// With no file the description is read from standard input. The demand
// comes from the description's "demand" line unless overridden by -s, -t
// and -d.
//
// Examples:
//
//	relcalc network.g
//	relcalc -engine naive network.g
//	relcalc -engine chain -stats network.g
//	relcalc -engine montecarlo -samples 1000000 network.g
//	relcalc -bounds -states 3 -dist network.g
//	relcalc -timeout 2s -max-configs 1000000 network.g
//	relcalc -dot network.g | dot -Tsvg > network.svg
//	gengraph -type clustered | relcalc -engine core
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"flowrel"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relcalc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) (retErr error) {
	fs := flag.NewFlagSet("relcalc", flag.ContinueOnError)
	var (
		engineFlag  = fs.String("engine", "auto", "engine: auto, core, chain, naive, naive-gray, factoring, exact, montecarlo")
		sFlag       = fs.String("s", "", "override demand source node")
		tFlag       = fs.String("t", "", "override demand sink node")
		dFlag       = fs.Int("d", 0, "override demand bit-rate (number of sub-streams)")
		samplesFlag = fs.Int("samples", 200000, "samples for -engine montecarlo")
		seedFlag    = fs.Int64("seed", 1, "seed for -engine montecarlo")
		boundsFlag  = fs.Bool("bounds", false, "also print guaranteed lower/upper bounds")
		statesFlag  = fs.Int("states", -1, "also print most-probable-states bounds with this failure budget")
		distFlag    = fs.Bool("dist", false, "also print the full deliverable-rate distribution")
		reduceFlag  = fs.Bool("reduce", false, "apply exact reductions before solving")
		dotFlag     = fs.Bool("dot", false, "emit the graph as Graphviz DOT and exit")
		impFlag     = fs.Bool("importance", false, "also print the Birnbaum importance ranking of the links")
		jsonFlag    = fs.Bool("json", false, "emit the result as JSON (exact engines only)")
		cutFlag     = fs.Int("maxcut", 3, "maximum bottleneck size to search (core/chain engines)")
		parFlag     = fs.Int("p", 0, "parallelism (0 = all cores)")
		statsFlag   = fs.Bool("stats", false, "print work statistics")
		timeoutFlag = fs.Duration("timeout", 0, "soft wall-clock budget; an interrupted run prints a certified interval instead of failing")
		cfgsFlag    = fs.Uint64("max-configs", 0, "budget on failure configurations examined (0 = unlimited)")
		serveFlag   = fs.String("serve", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address and keep serving after the computation until interrupted")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *serveFlag != "" {
		ds, err := startDebugServer(*serveFlag)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "relcalc: debug server on http://%s/debug/vars and http://%s/debug/pprof/\n", ds.Addr(), ds.Addr())
		defer func() {
			if retErr == nil {
				serveWait()
			}
			ds.Close()
		}()
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	file, err := flowrel.ParseText(in)
	if err != nil {
		return err
	}
	g := file.Graph

	var dem flowrel.Demand
	if file.Demand != nil {
		dem = *file.Demand
	}
	if *sFlag != "" {
		id, ok := g.NodeByName(*sFlag)
		if !ok {
			return fmt.Errorf("unknown node %q", *sFlag)
		}
		dem.S = id
	}
	if *tFlag != "" {
		id, ok := g.NodeByName(*tFlag)
		if !ok {
			return fmt.Errorf("unknown node %q", *tFlag)
		}
		dem.T = id
	}
	if *dFlag > 0 {
		dem.D = *dFlag
	}
	if err := dem.Validate(g); err != nil {
		return fmt.Errorf("no usable demand (use a demand line or -s/-t/-d): %w", err)
	}

	if *dotFlag {
		var hl []flowrel.EdgeID
		if bt, err := flowrel.FindBottleneck(g, dem.S, dem.T, *cutFlag); err == nil {
			hl = bt.Cut
		}
		return flowrel.WriteDOT(stdout, g, flowrel.DOTOptions{Demand: &dem, Highlight: hl})
	}

	budget := flowrel.Budget{MaxConfigs: *cfgsFlag, SoftDeadline: *timeoutFlag}
	// The -maxcut default is a search bound, not a promise about the graph:
	// clamp it so tiny (or heavily reduced) graphs don't trip validation.
	maxCut := func(g *flowrel.Graph) int {
		if *cutFlag > g.NumEdges() {
			return g.NumEdges()
		}
		return *cutFlag
	}

	if *jsonFlag {
		rep, err := flowrel.Compute(g, dem, flowrel.Config{
			MaxBottleneck: maxCut(g),
			Parallelism:   *parFlag,
			Budget:        budget,
			CollectStats:  *statsFlag,
		})
		if err != nil {
			return err
		}
		out := map[string]any{
			"nodes":       g.NumNodes(),
			"links":       g.NumEdges(),
			"demand":      map[string]any{"s": int(dem.S), "t": int(dem.T), "d": dem.D},
			"reliability": rep.Reliability,
			"engine":      rep.Engine.String(),
		}
		if *statsFlag {
			out["stats"] = rep.Stats
			out["plan_cache"] = flowrel.PlanCacheSnapshot()
		}
		if rep.Partial {
			out["partial"] = true
			out["lo"] = rep.Lo
			out["hi"] = rep.Hi
			out["rung"] = rep.Rung
			out["reason"] = rep.Reason
		}
		if rep.Engine == flowrel.EngineCore {
			cut := make([]int, len(rep.Cut))
			for i, e := range rep.Cut {
				cut[i] = int(e)
			}
			out["bottleneck"] = map[string]any{"links": cut, "k": rep.K, "alpha": rep.Alpha}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Fprintf(stdout, "graph: %d nodes, %d links; demand %v\n", g.NumNodes(), g.NumEdges(), dem)
	if *reduceFlag {
		red, err := flowrel.Reduce(g, dem)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "reduced: %d links (clipped %d, removed %d, series %d, parallel %d)\n",
			red.G.NumEdges(), red.Stats.Clipped, red.Stats.Irrelevant,
			red.Stats.SeriesMerges, red.Stats.ParallelMerges)
		g = red.G
		dem = red.Demand
	}
	start := time.Now()

	switch *engineFlag {
	case "montecarlo":
		est, err := flowrel.MonteCarloCtx(context.Background(), g, dem, *samplesFlag, *seedFlag, budget)
		if err != nil {
			return err
		}
		lo, hi := est.ConfidenceInterval(1.96)
		fmt.Fprintf(stdout, "reliability ≈ %.6f  (95%% CI [%.6f, %.6f], %d samples, %v)\n",
			est.Reliability, lo, hi, est.Samples, time.Since(start).Round(time.Millisecond))
		if est.Partial {
			fmt.Fprintf(stdout, "partial: stopped after %d of %d samples (%s)\n", est.Samples, *samplesFlag, est.Reason)
		}
	case "exact":
		ctx := context.Background()
		if *timeoutFlag > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeoutFlag)
			defer cancel()
		}
		r, err := flowrel.ExactCtx(ctx, g, dem)
		if err != nil {
			return err
		}
		f, _ := r.Float64()
		fmt.Fprintf(stdout, "reliability = %.12f  (exact rational %s, %v)\n", f, r.RatString(), time.Since(start).Round(time.Millisecond))
	case "chain":
		res, err := flowrel.ChainReliability(g, dem, nil, flowrel.ChainOptions{Parallelism: *parFlag})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "reliability = %.12f  (engine chain, %v)\n", res.Reliability, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(stdout, "chain: %d cuts %v, segment links %v\n", len(res.Cuts), res.Cuts, res.SegmentEdges)
		if *statsFlag {
			fmt.Fprintf(stdout, "stats: %d max-flow calls\n", res.MaxFlowCalls)
		}
	default:
		var eng flowrel.Engine
		switch *engineFlag {
		case "auto":
			eng = flowrel.EngineAuto
		case "core":
			eng = flowrel.EngineCore
		case "naive":
			eng = flowrel.EngineNaive
		case "naive-gray":
			eng = flowrel.EngineNaiveGray
		case "factoring":
			eng = flowrel.EngineFactoring
		default:
			return fmt.Errorf("unknown engine %q", *engineFlag)
		}
		rep, err := flowrel.Compute(g, dem, flowrel.Config{
			Engine:        eng,
			MaxBottleneck: maxCut(g),
			Parallelism:   *parFlag,
			Budget:        budget,
			CollectStats:  *statsFlag,
		})
		if err != nil {
			return err
		}
		if rep.Partial {
			rung := rep.Rung
			if rung == "" {
				rung = rep.Engine.String()
			}
			fmt.Fprintf(stdout, "reliability ∈ [%.6f, %.6f]  (certified; point estimate %.6f, rung %s, %v)\n",
				rep.Lo, rep.Hi, rep.Reliability, rung, time.Since(start).Round(time.Millisecond))
			fmt.Fprintf(stdout, "partial: %s\n", rep.Reason)
		} else {
			fmt.Fprintf(stdout, "reliability = %.12f  (engine %v, %v)\n", rep.Reliability, rep.Engine, time.Since(start).Round(time.Millisecond))
		}
		if rep.Engine == flowrel.EngineCore {
			fmt.Fprintf(stdout, "bottleneck: links %v, k=%d, alpha=%.3f, |D|=%d\n", rep.Cut, rep.K, rep.Alpha, len(rep.Assignments))
		}
		if *statsFlag {
			fmt.Fprintf(stdout, "stats: %d max-flow calls, %d configurations\n", rep.MaxFlowCalls, rep.Configs)
			if st := rep.Stats; st != nil {
				fmt.Fprintf(stdout, "stats: %v total, %d augmenting paths, plan cache hit %v\n",
					time.Duration(st.TotalNanos).Round(time.Microsecond), st.AugmentingPaths, st.PlanCacheHit)
				for _, p := range st.Phases {
					fmt.Fprintf(stdout, "  phase %s/%s: %v, %d max-flow calls\n",
						p.Engine, p.Phase, time.Duration(p.DurationNanos).Round(time.Microsecond), p.MaxFlowCalls)
				}
				for _, r := range st.Rungs {
					fmt.Fprintf(stdout, "  rung %s: %s (%v)\n", r.Rung, r.Outcome, time.Duration(r.DurationNanos).Round(time.Microsecond))
				}
			}
			pc := flowrel.PlanCacheSnapshot()
			fmt.Fprintf(stdout, "stats: plan cache %d hits, %d misses, %d evictions, %d deduped compiles, %d entries\n",
				pc.Hits, pc.Misses, pc.Evictions, pc.CompileDedup, pc.Entries)
		}
	}

	if *boundsFlag {
		bd, err := flowrel.Bounds(g, dem, *cutFlag)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bounds: [%.6f, %.6f]  (%d disjoint delivery subgraphs, %d cuts)\n",
			bd.Lower, bd.Upper, bd.DisjointSubgraphs, bd.CutsExamined)
	}
	if *statesFlag >= 0 {
		bd, err := flowrel.MostProbableStates(g, dem, *statesFlag)
		if err != nil {
			return err
		}
		_, tail := flowrel.FailureLayerMass(g, *statesFlag)
		fmt.Fprintf(stdout, "states(≤%d failures): [%.6f, %.6f]  (unexamined mass %.3g)\n",
			*statesFlag, bd.Lower, bd.Upper, tail)
	}
	if *impFlag {
		imps, err := flowrel.BirnbaumImportance(g, dem)
		if err != nil {
			return err
		}
		sort.Slice(imps, func(i, j int) bool { return imps[i].Birnbaum > imps[j].Birnbaum })
		fmt.Fprintln(stdout, "link importance (harden the top ones first):")
		for i, imp := range imps {
			if i >= 10 {
				fmt.Fprintf(stdout, "  … %d more\n", len(imps)-10)
				break
			}
			e := g.Edge(imp.Link)
			fmt.Fprintf(stdout, "  link %d (%d→%d): Birnbaum %.6f, perfect link buys %+.6f\n",
				imp.Link, e.U, e.V, imp.Birnbaum, imp.Improvement)
		}
	}
	if *distFlag {
		ds, err := flowrel.FlowDistributionFactored(g, dem)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "deliverable-rate distribution:")
		for v, p := range ds.P {
			fmt.Fprintf(stdout, "  P(rate = %d) = %.6f\n", v, p)
		}
		fmt.Fprintf(stdout, "  E[rate] = %.4f of %d (%.1f%%)\n", ds.Mean(), ds.D, 100*ds.MeanFraction())
	}
	return nil
}
