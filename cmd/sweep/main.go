// Command sweep prints reliability curves as CSV, ready for gnuplot or a
// spreadsheet — the tool behind "how does reliability degrade as links get
// worse", the curve form of the paper's evaluation.
//
// Three sweep modes:
//
//	-mode uniform      R(p) with every link failing at probability p
//	                   (one enumeration via the reliability polynomial,
//	                   then free evaluations)
//	-mode scale        every link's own probability multiplied by the
//	                   sweep value (one compiled plan, one probability
//	                   evaluation per point — no per-point solves)
//	-mode bottleneck   only the discovered bottleneck links' probability
//	                   set to the sweep value (same compile-once plan)
//
// The scale and bottleneck curves vary only probabilities, never the
// topology, so the bottleneck decomposition is compiled once and each
// point is a microsecond evaluation. When the instance does not admit the
// decomposition (or the budget interrupts the compile), the sweep falls
// back to one anytime solve per point, printing certified intervals as
// comments for points the budget cuts short.
//
// Usage:
//
//	gengraph -type clustered | sweep -mode uniform -from 0 -to 0.5 -steps 20
//	sweep -mode bottleneck network.g > curve.csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"flowrel"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		modeFlag  = fs.String("mode", "uniform", "uniform, scale, or bottleneck")
		fromFlag  = fs.Float64("from", 0, "sweep start")
		toFlag    = fs.Float64("to", 0.5, "sweep end")
		stepsFlag = fs.Int("steps", 20, "number of points (≥ 2)")
		cutFlag   = fs.Int("maxcut", 3, "bottleneck search budget")
		timeFlag  = fs.Duration("timeout", 0, "soft wall-clock budget for the whole sweep; points past it print certified intervals as comments")
		cfgsFlag  = fs.Uint64("max-configs", 0, "per-point configuration budget (0 = unlimited; scale/bottleneck modes)")
		parFlag   = fs.Int("parallelism", 0, "evaluation workers for the compile-once sweep modes (0 = GOMAXPROCS; results are identical either way)")
		statsFlag = fs.Bool("stats", false, "print a JSON work summary (metric deltas + plan cache) to standard error after the sweep; the CSV on standard output is unchanged")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stepsFlag < 2 {
		return fmt.Errorf("steps %d must be ≥ 2", *stepsFlag)
	}
	if *fromFlag < 0 || *fromFlag > *toFlag {
		return fmt.Errorf("sweep range [%g, %g] must satisfy 0 ≤ from ≤ to", *fromFlag, *toFlag)
	}
	// uniform and bottleneck sweep a probability; scale sweeps a factor.
	if *modeFlag != "scale" && *toFlag >= 1 {
		return fmt.Errorf("mode %s sweeps a probability; to = %g must be < 1", *modeFlag, *toFlag)
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	file, err := flowrel.ParseText(in)
	if err != nil {
		return err
	}
	if file.Demand == nil {
		return fmt.Errorf("the description needs a demand line")
	}
	g, dem := file.Graph, *file.Demand

	points := make([]float64, *stepsFlag)
	for i := range points {
		points[i] = *fromFlag + (*toFlag-*fromFlag)*float64(i)/float64(*stepsFlag-1)
	}

	ctx := context.Background()
	if *timeFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeFlag)
		defer cancel()
	}
	budget := flowrel.Budget{MaxConfigs: *cfgsFlag}

	var before flowrel.StatsReport
	if *statsFlag {
		before = flowrel.StatsSnapshot()
	}

	sweep := func() error {
		switch *modeFlag {
		case "uniform":
			var P flowrel.ReliabilityPolynomial
			var err error
			if *timeFlag > 0 || *cfgsFlag > 0 {
				P, err = flowrel.PolynomialCtx(ctx, g, dem, budget)
			} else {
				P, err = flowrel.Polynomial(g, dem)
			}
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "p,reliability")
			for _, p := range points {
				fmt.Fprintf(stdout, "%.6f,%.9f\n", p, P.Eval(p))
			}
		case "scale":
			scenario := func(base []float64, sc float64) []float64 {
				pf := make([]float64, len(base))
				for i, p := range base {
					p *= sc
					if p >= 1 {
						p = 0.999999
					}
					pf[i] = p
				}
				return pf
			}
			if done, err := planSweep(ctx, stdout, g, dem, flowrel.Config{Budget: budget, Parallelism: *parFlag}, "scale,reliability", "", points, scenario); done || err != nil {
				return err
			}
			// Fallback: one anytime solve per point on a reweighted copy.
			fmt.Fprintln(stdout, "scale,reliability")
			for _, sc := range points {
				sg, err := rebuild(g, func(e flowrel.Edge) float64 {
					p := e.PFail * sc
					if p >= 1 {
						p = 0.999999
					}
					return p
				})
				if err != nil {
					return err
				}
				if err := solvePoint(ctx, stdout, sg, dem, budget, sc); err != nil {
					return err
				}
			}
		case "bottleneck":
			bt, err := flowrel.FindBottleneck(g, dem.S, dem.T, *cutFlag)
			if err != nil {
				return err
			}
			cutNote := fmt.Sprintf("# bottleneck links: %v", bt.Cut)
			scenario := func(base []float64, p float64) []float64 {
				pf := append([]float64(nil), base...)
				for _, e := range bt.Cut {
					pf[e] = p
				}
				return pf
			}
			cfg := flowrel.Config{Bottleneck: bt.Cut, MaxBottleneck: *cutFlag, Budget: budget, Parallelism: *parFlag}
			if done, err := planSweepCfg(ctx, stdout, g, dem, cfg, "p_bottleneck,reliability", cutNote, points, scenario); done || err != nil {
				return err
			}
			// Fallback: one anytime solve per point on a reweighted copy.
			inCut := map[flowrel.EdgeID]bool{}
			for _, e := range bt.Cut {
				inCut[e] = true
			}
			fmt.Fprintln(stdout, cutNote)
			fmt.Fprintln(stdout, "p_bottleneck,reliability")
			for _, p := range points {
				sg, err := rebuild(g, func(e flowrel.Edge) float64 {
					if inCut[e.ID] {
						return p
					}
					return e.PFail
				})
				if err != nil {
					return err
				}
				if err := solvePoint(ctx, stdout, sg, dem, budget, p); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown mode %q", *modeFlag)
		}
		return nil
	}
	if err := sweep(); err != nil {
		return err
	}

	// The work summary rides on stderr so the CSV stays machine-readable:
	// per-layer metric deltas scoped to this sweep plus the plan-cache
	// counters (one compile + N free evaluations shows up directly here).
	if *statsFlag {
		delta := flowrel.StatsSnapshot().Delta(before)
		summary := map[string]any{
			"registry":   delta,
			"plan_cache": flowrel.PlanCacheSnapshot(),
			// The frontier engine's pruning counters, pulled out of the
			// registry delta so a sweep's avoided work is visible without
			// grepping the full counter map.
			"pruning": map[string]int64{
				"pruned_capacity":         delta.Counters["core.pruned_capacity"],
				"pruned_closure":          delta.Counters["core.pruned_closure"],
				"frontier_max_flow_calls": delta.Counters["core.frontier_max_flow_calls"],
			},
		}
		enc := json.NewEncoder(stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			return err
		}
	}
	return nil
}

// planSweep compiles the instance once and evaluates every sweep point
// against the plan — no per-point max-flow work. It reports done = false
// (printing nothing) when the instance does not compile, so the caller can
// fall back to per-point solves.
func planSweep(ctx context.Context, stdout io.Writer, g *flowrel.Graph, dem flowrel.Demand, cfg flowrel.Config, header, note string, points []float64, scenario func(base []float64, x float64) []float64) (bool, error) {
	return planSweepCfg(ctx, stdout, g, dem, cfg, header, note, points, scenario)
}

func planSweepCfg(ctx context.Context, stdout io.Writer, g *flowrel.Graph, dem flowrel.Demand, cfg flowrel.Config, header, note string, points []float64, scenario func(base []float64, x float64) []float64) (bool, error) {
	plan, err := flowrel.CompilePlanCtx(ctx, g, dem, cfg)
	if err != nil {
		// Structural decline or interrupted compile: let the per-point
		// anytime path answer (it degrades gracefully and prints certified
		// intervals when the budget cuts a point short).
		return false, nil
	}
	base := plan.BasePFail()
	scenarios := make([][]float64, len(points))
	for i, x := range points {
		scenarios[i] = scenario(base, x)
	}
	rs, err := plan.EvalBatch(scenarios)
	if err != nil {
		return false, err
	}
	if note != "" {
		fmt.Fprintln(stdout, note)
	}
	fmt.Fprintln(stdout, header)
	for i, x := range points {
		fmt.Fprintf(stdout, "%.6f,%.9f\n", x, rs[i])
	}
	return true, nil
}

// solvePoint computes one sweep point under the shared deadline and the
// per-point budget; a partial answer yields the certified midpoint plus a
// comment row with the interval.
func solvePoint(ctx context.Context, stdout io.Writer, sg *flowrel.Graph, dem flowrel.Demand, budget flowrel.Budget, x float64) error {
	rep, err := flowrel.ComputeCtx(ctx, sg, dem, flowrel.Config{Budget: budget})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%.6f,%.9f\n", x, rep.Reliability)
	if rep.Partial {
		fmt.Fprintf(stdout, "# partial at %.6f: certified [%.9f, %.9f], rung %s\n", x, rep.Lo, rep.Hi, rep.Rung)
	}
	return nil
}

// rebuild copies g with each link's failure probability mapped through f.
func rebuild(g *flowrel.Graph, f func(flowrel.Edge) float64) (*flowrel.Graph, error) {
	b := flowrel.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(flowrel.NodeID(i)))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, f(e))
	}
	return b.Build()
}
