package main

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"testing"

	"flowrel"
)

const net = `
edge s a 1 0.1
edge a t 1 0.1
edge s t 1 0.2
demand s t 1
`

func sweepCLI(t *testing.T, args []string, stdin string) string {
	t.Helper()
	// Each real CLI invocation is a fresh process with an empty plan
	// cache; mirror that so budgeted runs are not answered from plans
	// compiled by earlier tests in this binary.
	flowrel.ResetPlanCache()
	var out strings.Builder
	if err := run(args, strings.NewReader(stdin), &out, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

// parseCurve extracts (x, y) pairs from the CSV body.
func parseCurve(t *testing.T, out string) (xs, ys []float64) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") || strings.ContainsAny(line, "abcdefghijklmnopqrstuvwxyz") {
			continue // comment or header
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			t.Fatalf("bad CSV line %q", line)
		}
		x, err1 := strconv.ParseFloat(parts[0], 64)
		y, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad CSV line %q", line)
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

func TestUniformSweepMonotone(t *testing.T) {
	out := sweepCLI(t, []string{"-mode", "uniform", "-from", "0", "-to", "0.9", "-steps", "10"}, net)
	xs, ys := parseCurve(t, out)
	if len(xs) != 10 {
		t.Fatalf("got %d points", len(xs))
	}
	if ys[0] != 1 {
		t.Fatalf("R(0) = %g, want 1", ys[0])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+1e-12 {
			t.Fatalf("curve not non-increasing at %d: %v", i, ys)
		}
	}
}

func TestScaleSweepEndpoints(t *testing.T) {
	out := sweepCLI(t, []string{"-mode", "scale", "-from", "0", "-to", "1", "-steps", "5"}, net)
	xs, ys := parseCurve(t, out)
	if xs[0] != 0 || ys[0] != 1 {
		t.Fatalf("scale 0 should be perfect: %v %v", xs[0], ys[0])
	}
	// scale 1 = the instance's own reliability: 1-(1-0.81)(1-0.8)=0.962.
	if d := ys[len(ys)-1] - 0.962; d > 1e-9 || d < -1e-9 {
		t.Fatalf("scale 1 R = %v, want 0.962", ys[len(ys)-1])
	}
}

func TestBottleneckSweep(t *testing.T) {
	// Bridge network: the bottleneck sweep hits the bridge.
	bridgeNet := "edge s m 2 0.05\nedge m t 1 0.1\nedge m t 1 0.1\ndemand s t 1\n"
	out := sweepCLI(t, []string{"-mode", "bottleneck", "-from", "0", "-to", "0.5", "-steps", "3"}, bridgeNet)
	// The balanced-cut search prefers the two m→t links (max side 1 link)
	// over the bridge (max side 2 links).
	if !strings.Contains(out, "# bottleneck links: [1 2]") {
		t.Fatalf("expected the m→t pair discovered:\n%s", out)
	}
	_, ys := parseCurve(t, out)
	// R(p) = 0.95·(1-p²): p=0 → 0.95, p=0.5 → 0.7125.
	if d := ys[0] - 0.95; d > 1e-9 || d < -1e-9 {
		t.Fatalf("R at p=0: %v", ys[0])
	}
	if d := ys[2] - 0.7125; d > 1e-9 || d < -1e-9 {
		t.Fatalf("R at p=0.5: %v", ys[2])
	}
}

func TestSweepBudgetPrintsIntervals(t *testing.T) {
	out := sweepCLI(t, []string{"-mode", "scale", "-from", "0.5", "-to", "1", "-steps", "3", "-max-configs", "1"}, net)
	if !strings.Contains(out, "# partial at") || !strings.Contains(out, "certified [") {
		t.Fatalf("budgeted sweep missing interval comments:\n%s", out)
	}
	xs, _ := parseCurve(t, out)
	if len(xs) != 3 {
		t.Fatalf("partial sweep must still emit every point, got %d", len(xs))
	}
}

func TestSweepErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-mode", "nope"},
		{"-steps", "1"},
		{"-from", "0.5", "-to", "0.1"},
		{"-mode", "uniform", "-to", "1.0"},
	} {
		if err := run(args, strings.NewReader(net), &sb, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if err := run(nil, strings.NewReader("edge s t 1 0.1\n"), &sb, io.Discard); err == nil {
		t.Error("missing demand accepted")
	}
	if err := run(nil, strings.NewReader("garbage"), &sb, io.Discard); err == nil {
		t.Error("garbage accepted")
	}
	if err := run([]string{"/nonexistent.g"}, strings.NewReader(""), &sb, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

// TestStatsSummary checks -stats: the CSV on stdout is unchanged and a
// JSON work summary (registry deltas + plan cache counters) lands on
// stderr.
func TestStatsSummary(t *testing.T) {
	flowrel.ResetPlanCache()
	var out, errOut strings.Builder
	args := []string{"-mode", "scale", "-from", "0.5", "-to", "2", "-steps", "5", "-stats"}
	if err := run(args, strings.NewReader(net), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "scale,reliability") {
		t.Errorf("stdout no longer starts with the CSV header:\n%s", out.String())
	}
	if strings.Contains(out.String(), "registry") {
		t.Error("stats summary leaked onto stdout")
	}
	var summary map[string]any
	if err := json.Unmarshal([]byte(errOut.String()), &summary); err != nil {
		t.Fatalf("stderr is not JSON: %v\n%s", err, errOut.String())
	}
	for _, key := range []string{"registry", "plan_cache"} {
		if _, ok := summary[key]; !ok {
			t.Errorf("summary missing %q:\n%s", key, errOut.String())
		}
	}
}
