package flowrel

import (
	"fmt"
	"sync"
	"testing"
)

// cacheTestInstance builds a tiny two-path instance whose structure is
// distinguished by the capacity of its first link, so successive calls
// with different caps occupy distinct plan-cache slots.
func cacheTestInstance(t testing.TB, cap int) (*Graph, Demand) {
	t.Helper()
	b := NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, cap, 0.1)
	b.AddEdge(a, tt, cap, 0.1)
	b.AddEdge(s, tt, 1, 0.2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, Demand{S: s, T: tt, D: 1}
}

// TestPlanCacheAccounting fills the cache past capacity and checks every
// counter: evictions match the overflow, a re-compile of an evicted
// structure counts as a miss, and hits stay hits.
func TestPlanCacheAccounting(t *testing.T) {
	ResetPlanCache()
	SetPlanCacheCapacity(2)
	t.Cleanup(func() {
		SetPlanCacheCapacity(defaultPlanCacheCapacity)
		ResetPlanCache()
	})

	// Four distinct structures through a capacity-2 cache: 4 misses, 2
	// evictions (caps 1 and 2 fall out), entries pinned at 2.
	for cap := 1; cap <= 4; cap++ {
		g, dem := cacheTestInstance(t, cap)
		if _, err := CompilePlan(g, dem, Config{}); err != nil {
			t.Fatal(err)
		}
	}
	pc := PlanCacheSnapshot()
	if pc.Misses != 4 || pc.Hits != 0 {
		t.Errorf("after 4 cold compiles: hits=%d misses=%d, want 0/4", pc.Hits, pc.Misses)
	}
	if pc.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", pc.Evictions)
	}
	if pc.Entries != 2 {
		t.Errorf("entries = %d, want 2", pc.Entries)
	}

	// The two resident structures (caps 3 and 4) hit.
	for cap := 3; cap <= 4; cap++ {
		g, dem := cacheTestInstance(t, cap)
		if _, err := CompilePlan(g, dem, Config{}); err != nil {
			t.Fatal(err)
		}
	}
	if pc = PlanCacheSnapshot(); pc.Hits != 2 {
		t.Errorf("hits = %d, want 2", pc.Hits)
	}

	// An evicted structure re-compiles: a miss (not a hit), plus one more
	// eviction to make room.
	g, dem := cacheTestInstance(t, 1)
	if _, err := CompilePlan(g, dem, Config{}); err != nil {
		t.Fatal(err)
	}
	pc = PlanCacheSnapshot()
	if pc.Misses != 5 {
		t.Errorf("re-compile after eviction: misses = %d, want 5", pc.Misses)
	}
	if pc.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", pc.Evictions)
	}

	// Shrinking the capacity evicts immediately.
	SetPlanCacheCapacity(1)
	if pc = PlanCacheSnapshot(); pc.Evictions != 4 || pc.Entries != 1 {
		t.Errorf("after shrink: evictions=%d entries=%d, want 4/1", pc.Evictions, pc.Entries)
	}

	// The legacy accessor agrees with the snapshot.
	hits, misses, entries := PlanCacheStats()
	if hits != pc.Hits || misses != pc.Misses || entries != pc.Entries {
		t.Errorf("PlanCacheStats (%d,%d,%d) disagrees with snapshot %+v", hits, misses, entries, pc)
	}
}

// TestPlanCacheCompileDedup races many goroutines compiling the same
// cold structure: exactly one compiles (the rest either dedup onto the
// leader's in-flight compile or hit the freshly cached plan), and the
// resulting plans answer identically. Run under -race this also proves
// the singleflight path is clean.
func TestPlanCacheCompileDedup(t *testing.T) {
	ResetPlanCache()
	t.Cleanup(ResetPlanCache)
	g, dem := cacheTestInstance(t, 2)

	const workers = 8
	var wg sync.WaitGroup
	vals := make([]float64, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan, err := CompilePlan(g, dem, Config{})
			if err != nil {
				errs[i] = err
				return
			}
			vals[i], errs[i] = plan.Eval(nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 1; i < workers; i++ {
		if fmt.Sprintf("%.15g", vals[i]) != fmt.Sprintf("%.15g", vals[0]) {
			t.Fatalf("worker %d got %v, worker 0 got %v", i, vals[i], vals[0])
		}
	}

	pc := PlanCacheSnapshot()
	if pc.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 compile for %d concurrent callers", pc.Misses, workers)
	}
	if got := pc.Hits + pc.CompileDedup; got != workers-1 {
		t.Errorf("hits (%d) + deduped (%d) = %d, want %d", pc.Hits, pc.CompileDedup, got, workers-1)
	}
}
