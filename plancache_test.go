package flowrel

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// cacheTestInstance builds a tiny two-path instance whose structure is
// distinguished by the capacity of its first link, so successive calls
// with different caps occupy distinct plan-cache slots.
func cacheTestInstance(t testing.TB, cap int) (*Graph, Demand) {
	t.Helper()
	b := NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, cap, 0.1)
	b.AddEdge(a, tt, cap, 0.1)
	b.AddEdge(s, tt, 1, 0.2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, Demand{S: s, T: tt, D: 1}
}

// withPlanCacheShards swaps the process cache for a fresh one with the
// given stripe count for the duration of the test. Counters start at
// zero; the original cache (and whatever it held) is restored afterwards.
func withPlanCacheShards(t *testing.T, shards, capacity int) {
	t.Helper()
	old := planCache
	planCache = newPlanCache(shards, capacity)
	t.Cleanup(func() { planCache = old })
}

// TestPlanCacheAccounting fills the cache past capacity and checks every
// counter: evictions match the overflow, a re-compile of an evicted
// structure counts as a miss, and hits stay hits. A single shard pins the
// exact global-LRU semantics; the sharded default only changes which
// entries share an LRU list, not what counts as a hit or a miss.
func TestPlanCacheAccounting(t *testing.T) {
	withPlanCacheShards(t, 1, 2)

	// Four distinct structures through a capacity-2 cache: 4 misses, 2
	// evictions (caps 1 and 2 fall out), entries pinned at 2.
	for cap := 1; cap <= 4; cap++ {
		g, dem := cacheTestInstance(t, cap)
		if _, err := CompilePlan(g, dem, Config{}); err != nil {
			t.Fatal(err)
		}
	}
	pc := PlanCacheSnapshot()
	if pc.Misses != 4 || pc.Hits != 0 {
		t.Errorf("after 4 cold compiles: hits=%d misses=%d, want 0/4", pc.Hits, pc.Misses)
	}
	if pc.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", pc.Evictions)
	}
	if pc.Entries != 2 {
		t.Errorf("entries = %d, want 2", pc.Entries)
	}

	// The two resident structures (caps 3 and 4) hit.
	for cap := 3; cap <= 4; cap++ {
		g, dem := cacheTestInstance(t, cap)
		if _, err := CompilePlan(g, dem, Config{}); err != nil {
			t.Fatal(err)
		}
	}
	if pc = PlanCacheSnapshot(); pc.Hits != 2 {
		t.Errorf("hits = %d, want 2", pc.Hits)
	}

	// An evicted structure re-compiles: a miss (not a hit), plus one more
	// eviction to make room.
	g, dem := cacheTestInstance(t, 1)
	if _, err := CompilePlan(g, dem, Config{}); err != nil {
		t.Fatal(err)
	}
	pc = PlanCacheSnapshot()
	if pc.Misses != 5 {
		t.Errorf("re-compile after eviction: misses = %d, want 5", pc.Misses)
	}
	if pc.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", pc.Evictions)
	}

	// Shrinking the capacity evicts immediately.
	SetPlanCacheCapacity(1)
	if pc = PlanCacheSnapshot(); pc.Evictions != 4 || pc.Entries != 1 {
		t.Errorf("after shrink: evictions=%d entries=%d, want 4/1", pc.Evictions, pc.Entries)
	}

	// The legacy accessor agrees with the snapshot.
	hits, misses, entries := PlanCacheStats()
	if hits != pc.Hits || misses != pc.Misses || entries != pc.Entries {
		t.Errorf("PlanCacheStats (%d,%d,%d) disagrees with snapshot %+v", hits, misses, entries, pc)
	}
}

// TestPlanCacheCompileDedup races many goroutines compiling the same
// cold structure: exactly one compiles (the rest either dedup onto the
// leader's in-flight compile or hit the freshly cached plan), and the
// resulting plans answer identically. Run under -race this also proves
// the singleflight path is clean.
func TestPlanCacheCompileDedup(t *testing.T) {
	ResetPlanCache()
	t.Cleanup(ResetPlanCache)
	g, dem := cacheTestInstance(t, 2)

	const workers = 8
	var wg sync.WaitGroup
	vals := make([]float64, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan, err := CompilePlan(g, dem, Config{})
			if err != nil {
				errs[i] = err
				return
			}
			vals[i], errs[i] = plan.Eval(nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 1; i < workers; i++ {
		if fmt.Sprintf("%.15g", vals[i]) != fmt.Sprintf("%.15g", vals[0]) {
			t.Fatalf("worker %d got %v, worker 0 got %v", i, vals[i], vals[0])
		}
	}

	pc := PlanCacheSnapshot()
	if pc.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 compile for %d concurrent callers", pc.Misses, workers)
	}
	if got := pc.Hits + pc.CompileDedup; got != workers-1 {
		t.Errorf("hits (%d) + deduped (%d) = %d, want %d", pc.Hits, pc.CompileDedup, got, workers-1)
	}
}

// distinctShardInstances returns two cache-test capacities whose
// structural keys land on different shards of the current cache, plus
// those keys. With 16 stripes and a uniform hash this needs only a
// handful of candidates.
func distinctShardInstances(t *testing.T) (capA, capB int, keyA, keyB string) {
	t.Helper()
	firstCap, firstKey := 0, ""
	for cap := 1; cap <= 64; cap++ {
		g, dem := cacheTestInstance(t, cap)
		key := planKey(g, dem, Config{})
		if firstCap == 0 {
			firstCap, firstKey = cap, key
			continue
		}
		if planCache.shardIndex(key) != planCache.shardIndex(firstKey) {
			return firstCap, cap, firstKey, key
		}
	}
	t.Fatal("no two instances landed on distinct shards among 64 candidates")
	return 0, 0, "", ""
}

// TestPlanCacheShardIndependence is the non-contention regression test:
// two hot keys whose structural hashes land on different shard indices
// must resolve to different shard objects — and therefore different
// mutexes — so a compile or lookup storm on one cannot serialize the
// other. Asserted structurally via the shard index, not via timing.
func TestPlanCacheShardIndependence(t *testing.T) {
	withPlanCacheShards(t, planCacheShards, defaultPlanCacheCapacity)
	_, capB, keyA, keyB := distinctShardInstances(t)

	sa, sb := planCache.shardFor(keyA), planCache.shardFor(keyB)
	if sa == sb {
		t.Fatalf("keys with shard indices %d and %d resolved to the same shard object",
			planCache.shardIndex(keyA), planCache.shardIndex(keyB))
	}
	if &sa.mu == &sb.mu {
		t.Fatal("distinct shards share a mutex")
	}

	// Holding shard A's lock must not block shard B's lookups: take A's
	// mutex directly, then complete a full compile on B. This would
	// deadlock (and fail the test timeout) on a single-lock cache; on the
	// striped cache it is pure structure, no timing assertion needed.
	sa.mu.Lock()
	done := make(chan error, 1)
	go func() {
		g, dem := cacheTestInstance(t, capB)
		_, err := CompilePlan(g, dem, Config{})
		done <- err
	}()
	if err := <-done; err != nil {
		sa.mu.Unlock()
		t.Fatal(err)
	}
	sa.mu.Unlock()

	sb.mu.Lock()
	got := sb.misses
	sb.mu.Unlock()
	if got != 1 {
		t.Errorf("shard B misses = %d, want 1 (the compile that ran while shard A's lock was held)", got)
	}
}

// TestPlanCacheShardedHammer drives concurrent hits, misses and evictions
// across many keys and a tiny per-shard capacity, then checks the global
// accounting invariant: every lookup is exactly one of hit, miss or
// dedup, regardless of which shard it landed on. Run under -race this is
// the striped cache's concurrency soak.
func TestPlanCacheShardedHammer(t *testing.T) {
	withPlanCacheShards(t, planCacheShards, 4) // per-shard capacity 1 → constant eviction pressure

	const workers = 8
	const rounds = 12
	const structures = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				cap := 1 + (w+r)%structures
				g, dem := cacheTestInstance(t, cap)
				plan, err := CompilePlan(g, dem, Config{})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := plan.Eval(nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	pc := PlanCacheSnapshot()
	if total := pc.Hits + pc.Misses + pc.CompileDedup; total != workers*rounds {
		t.Errorf("hits+misses+dedups = %d, want %d lookups", total, workers*rounds)
	}
	if pc.Misses == 0 {
		t.Error("no misses recorded across a cold hammer")
	}
	if pc.Entries > planCacheShards {
		t.Errorf("entries = %d exceeds the per-shard bound × shards = %d", pc.Entries, planCacheShards)
	}
}

// TestPlanCacheLeaderErrorRetryPerShard simulates a failed singleflight
// leader on a specific shard — err set, entry removed, done closed, the
// order the real leader path uses — and checks a waiter retries on that
// same shard: one dedup (the wait on the doomed leader) followed by one
// miss (its own successful compile), with the neighbouring shard's
// counters untouched.
func TestPlanCacheLeaderErrorRetryPerShard(t *testing.T) {
	withPlanCacheShards(t, planCacheShards, defaultPlanCacheCapacity)
	capA, capB, keyA, keyB := distinctShardInstances(t)
	_ = capB

	shard := planCache.shardFor(keyA)
	other := planCache.shardFor(keyB)

	// Install a doomed in-flight compile for keyA, as if a leader with an
	// exhausted budget were mid-flight.
	fl := &inflightCompile{done: make(chan struct{}), err: fmt.Errorf("simulated leader budget exhaustion")}
	shard.mu.Lock()
	shard.inflight[keyA] = fl
	shard.mu.Unlock()

	// The waiter joins the in-flight compile, sees the leader fail, and
	// retries under its own controller.
	done := make(chan error, 1)
	go func() {
		g, dem := cacheTestInstance(t, capA)
		plan, err := CompilePlan(g, dem, Config{})
		if err == nil {
			_, err = plan.Eval(nil)
		}
		done <- err
	}()

	// Wait until the waiter has joined (its acquire bumps the shard's
	// dedup counter), then fail the leader the way planFor does: remove
	// the in-flight entry, then close done.
	for {
		shard.mu.Lock()
		joined := shard.dedups > 0
		if joined {
			delete(shard.inflight, keyA)
		}
		shard.mu.Unlock()
		if joined {
			break
		}
		runtime.Gosched()
	}
	close(fl.done)

	if err := <-done; err != nil {
		t.Fatalf("waiter after leader failure: %v", err)
	}

	shard.mu.Lock()
	dedups, misses, hits := shard.dedups, shard.misses, shard.hits
	shard.mu.Unlock()
	if dedups != 1 || misses != 1 || hits != 0 {
		t.Errorf("failed-leader shard counters hits=%d misses=%d dedups=%d, want 0/1/1", hits, misses, dedups)
	}
	other.mu.Lock()
	otherTotal := other.hits + other.misses + other.dedups
	other.mu.Unlock()
	if otherTotal != 0 {
		t.Errorf("unrelated shard saw %d lookups, want 0", otherTotal)
	}
}

// TestStructuralHashMatchesCacheKey pins the exported handle to the
// internal cache key: same structure → same hash regardless of failure
// probabilities, different capacity → different hash.
func TestStructuralHashMatchesCacheKey(t *testing.T) {
	g1, dem := cacheTestInstance(t, 2)
	h1 := StructuralHash(g1, dem, Config{})
	if len(h1) != 64 { // hex-encoded SHA-256
		t.Fatalf("hash length = %d, want 64", len(h1))
	}

	// Same structure, different probabilities: the builder below differs
	// from cacheTestInstance only in PFail values.
	b := NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, 2, 0.5)
	b.AddEdge(a, tt, 2, 0.5)
	b.AddEdge(s, tt, 1, 0.5)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if h2 := StructuralHash(g2, dem, Config{}); h2 != h1 {
		t.Errorf("hash depends on failure probabilities: %s vs %s", h1, h2)
	}

	g3, dem3 := cacheTestInstance(t, 3)
	if h3 := StructuralHash(g3, dem3, Config{}); h3 == h1 {
		t.Error("distinct capacities produced the same structural hash")
	}
}
