package flowrel

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"flowrel/internal/testutil"
)

// hardGraph builds a dense random digraph whose full enumeration space
// (2^{|E|}) is far beyond anything a test could finish.
func hardGraph(t *testing.T, nodes, extra int) (*Graph, Demand) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	first := b.AddNodes(nodes)
	for i := 1; i < nodes; i++ {
		b.AddEdge(first+NodeID(i-1), first+NodeID(i), 1+rng.Intn(2), 0.05+0.3*rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u == v {
			continue
		}
		b.AddEdge(first+NodeID(u), first+NodeID(v), 1+rng.Intn(2), 0.05+0.3*rng.Float64())
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, Demand{S: first, T: first + NodeID(nodes-1), D: 1}
}

// TestComputeCtxCancelledReturnsPromptly is the headline anytime
// guarantee: on a graph whose enumeration would take hours, an
// already-cancelled context yields a Partial report with a valid
// certified interval in well under 100 ms.
func TestComputeCtxCancelledReturnsPromptly(t *testing.T) {
	g, dem := hardGraph(t, 24, 60) // ~80 links: 2^80 configurations
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := ComputeCtx(ctx, g, dem, Config{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled ComputeCtx took %v, want < 100ms", elapsed)
	}
	if !rep.Partial {
		t.Fatal("cancelled run not marked partial")
	}
	if rep.Lo < 0 || rep.Hi > 1 || rep.Lo > rep.Hi {
		t.Fatalf("invalid interval [%g, %g]", rep.Lo, rep.Hi)
	}
	if rep.Reliability < rep.Lo || rep.Reliability > rep.Hi {
		t.Fatalf("point estimate %g outside [%g, %g]", rep.Reliability, rep.Lo, rep.Hi)
	}
	if rep.Reason == "" {
		t.Fatal("no reason recorded")
	}
}

// TestComputeCtxBudgetIntervalContainsOracle checks the certified
// interval against the exact oracle at several budgets.
func TestComputeCtxBudgetIntervalContainsOracle(t *testing.T) {
	g, dem := figure2Demand()
	exact, err := Exact(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Float64()
	for _, budget := range []uint64{4, 16, 64, 256} {
		// EngineFactoring isolates the anytime interval logic from the
		// ladder's rung scheduling.
		rep, err := ComputeCtx(context.Background(), g, dem,
			Config{Engine: EngineFactoring, Budget: Budget{MaxConfigs: budget}, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lo > rep.Hi || rep.Lo < 0 || rep.Hi > 1 {
			t.Fatalf("budget %d: invalid interval [%g, %g]", budget, rep.Lo, rep.Hi)
		}
		if want < rep.Lo-1e-9 || want > rep.Hi+1e-9 {
			t.Fatalf("budget %d: interval [%g, %g] misses oracle %g", budget, rep.Lo, rep.Hi, want)
		}
	}
}

// TestComputeCtxLadderDegrades forces the ladder past its structural
// rungs with a tiny budget and checks the degradation is recorded.
func TestComputeCtxLadderDegrades(t *testing.T) {
	g, dem := hardGraph(t, 12, 20)
	rep, err := ComputeCtx(context.Background(), g, dem,
		Config{Budget: Budget{MaxConfigs: 3000}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatalf("budgeted ladder run not partial: %+v", rep)
	}
	if rep.Rung == "" {
		t.Fatal("no rung recorded")
	}
	if rep.Reason == "" {
		t.Fatal("no degradation reason recorded")
	}
	if rep.Lo > rep.Hi || rep.Lo < 0 || rep.Hi > 1 {
		t.Fatalf("invalid interval [%g, %g]", rep.Lo, rep.Hi)
	}
	// The certified interval must contain a converged Monte Carlo
	// estimate (3σ tolerance).
	est, err := MonteCarlo(g, dem, 200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Reliability < rep.Lo-3*est.StdErr-1e-9 || est.Reliability > rep.Hi+3*est.StdErr+1e-9 {
		t.Fatalf("interval [%g, %g] (rung %s) misses MC estimate %g ± %g",
			rep.Lo, rep.Hi, rep.Rung, est.Reliability, est.StdErr)
	}
}

// TestComputeCtxCompleteMatchesCompute: an unlimited ComputeCtx is
// bit-identical to plain Compute and not partial.
func TestComputeCtxCompleteMatchesCompute(t *testing.T) {
	g, dem := figure2Demand()
	want, err := Compute(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComputeCtx(context.Background(), g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || !testutil.AlmostEqual(got.Reliability, want.Reliability, 0) {
		t.Fatalf("ComputeCtx = %+v, want %+v", got, want)
	}
	if !testutil.AlmostEqual(got.Lo, got.Reliability, 0) || !testutil.AlmostEqual(got.Hi, got.Reliability, 0) {
		t.Fatalf("complete run interval [%g, %g] not collapsed", got.Lo, got.Hi)
	}
}

func TestConfigValidate(t *testing.T) {
	g, _ := figure2Demand()
	cases := []struct {
		name string
		cfg  Config
		frag string
	}{
		{"negative MaxBottleneck", Config{MaxBottleneck: -1}, "MaxBottleneck"},
		{"negative MaxSideEdges", Config{MaxSideEdges: -5}, "MaxSideEdges"},
		{"negative MaxAssignmentSet", Config{MaxAssignmentSet: -2}, "MaxAssignmentSet"},
		{"MaxBottleneck beyond |E|", Config{MaxBottleneck: g.NumEdges() + 1}, "exceeds"},
		{"negative call budget", Config{Budget: Budget{MaxMaxFlowCalls: -1}}, "MaxMaxFlowCalls"},
		{"negative deadline", Config{Budget: Budget{SoftDeadline: -time.Second}}, "SoftDeadline"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate(g)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%s: error %q lacks %q", tc.name, err, tc.frag)
		}
		if _, err := Compute(g, Demand{S: 0, T: 1, D: 1}, tc.cfg); err == nil {
			t.Fatalf("%s: Compute accepted", tc.name)
		}
	}
	if err := (Config{}).Validate(g); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := (Config{MaxBottleneck: g.NumEdges() + 1}).Validate(nil); err != nil {
		t.Fatalf("nil-graph validation should skip size checks: %v", err)
	}
}

func TestExactCtxInterrupted(t *testing.T) {
	g, dem := figure2Demand()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExactCtx(ctx, g, dem)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

func TestMonteCarloCtxBudget(t *testing.T) {
	g, dem := figure2Demand()
	est, err := MonteCarloCtx(context.Background(), g, dem, 1000000, 1, Budget{MaxConfigs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Partial || est.Samples == 0 || est.Samples >= 1000000 {
		t.Fatalf("budgeted MC: %+v", est)
	}
}

func TestFlowDistributionCtxPartial(t *testing.T) {
	g, dem := figure2Demand()
	full, err := FlowDistribution(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := FlowDistributionCtx(ctx, g, dem, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Partial {
		t.Fatal("cancelled distribution not partial")
	}
	for j := 0; j <= dem.D; j++ {
		if ds.AtLeast(j) > full.AtLeast(j)+1e-9 {
			t.Fatalf("partial tail AtLeast(%d) = %g exceeds true %g", j, ds.AtLeast(j), full.AtLeast(j))
		}
	}
	// Complete run via the ctx variant matches the plain one.
	ds2, err := FlowDistributionCtx(context.Background(), g, dem, Budget{})
	if err != nil || ds2.Partial {
		t.Fatalf("unlimited ctx distribution: %+v, %v", ds2, err)
	}
	if math.Abs(ds2.Reliability()-full.Reliability()) > 1e-12 {
		t.Fatalf("ctx %g vs plain %g", ds2.Reliability(), full.Reliability())
	}
}

func TestMulticastCtxPartial(t *testing.T) {
	g, dem := figure2Demand()
	full, err := MulticastReliability(g, dem.S, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MulticastReliabilityCtx(context.Background(), g, dem.S, nil, 1, Budget{MaxConfigs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		if res.Lo > res.Hi || full.Reliability < res.Lo-1e-9 || full.Reliability > res.Hi+1e-9 {
			t.Fatalf("partial interval [%g, %g] misses %g", res.Lo, res.Hi, full.Reliability)
		}
	}
	est, err := MulticastMonteCarloCtx(context.Background(), g, dem.S, nil, 1, 500000, 1, Budget{MaxConfigs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Partial || est.Samples == 0 {
		t.Fatalf("budgeted multicast MC: %+v", est)
	}
}
