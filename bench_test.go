// Benchmarks regenerating the paper's evaluation artifacts (see DESIGN.md
// §5 for the experiment index and EXPERIMENTS.md for recorded results):
//
//	BenchmarkNaiveVsCore        — E7: the headline 2^{|E|} vs 2^{α|E|} claim
//	BenchmarkBridge             — E2: Eq. 1 on the Fig. 2 bridge graph
//	BenchmarkAssignments        — E3: assignment enumeration (Example 1)
//	BenchmarkFigure4            — E4: the two-bottleneck worked example
//	BenchmarkSimulator          — E10: streaming-session throughput
//	BenchmarkChain              — E11: single-cut vs multi-cut chains
//	BenchmarkMulticast          — E12: all-subscribers reliability
//	BenchmarkChurnTransform     — E13: node splitting + solve
//	BenchmarkPolynomial         — E14: R(p) computation and evaluation
//	BenchmarkRiskGroups         — E15: shared-risk conditioning
//	BenchmarkImportance         — E16: Birnbaum ranking
//	BenchmarkContinuousSim      — E17: event-driven renewal simulation
//	BenchmarkAccumulation       — A1: direct subset scan vs zeta transform
//	BenchmarkSideArrays         — A2: recompute vs Gray-code construction
//	BenchmarkEngines            — A3: all exact engines on one instance
//	BenchmarkMonteCarlo         — A4: sampling throughput
//	BenchmarkReduce             — A5: exact preprocessing
//	BenchmarkMostProbableStates — A6: certified bounds per failure budget
//	BenchmarkDistribution       — E9: deliverable-rate distribution
//	BenchmarkBottleneckSearch   — cut discovery preprocessing
package flowrel

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"flowrel/internal/assign"
	"flowrel/internal/chain"
	"flowrel/internal/churn"
	"flowrel/internal/core"
	"flowrel/internal/dist"
	"flowrel/internal/multicast"
	"flowrel/internal/overlay"
	"flowrel/internal/poly"
	"flowrel/internal/reduce"
	"flowrel/internal/reliability"
	"flowrel/internal/sim"
	"flowrel/internal/srlg"
)

// clusteredInstance builds the E7 workload: two clusters of the given side
// size joined by two bottleneck links, demand d=2.
func clusteredInstance(b testing.TB, side int) (*Graph, Demand, []EdgeID) {
	b.Helper()
	o, err := overlay.Clustered(side, side+3, 2, 2, 2, 0.1, int64(side))
	if err != nil {
		b.Fatal(err)
	}
	return o.G, o.Demand(o.Peers[len(o.Peers)-1]), o.Bottleneck
}

// BenchmarkNaiveVsCore is experiment E7: the same instances solved by the
// naive 2^{|E|} enumeration and the proposed 2^{α|E|} decomposition.
func BenchmarkNaiveVsCore(b *testing.B) {
	for _, side := range []int{4, 6, 8} {
		g, dem, cut := clusteredInstance(b, side)
		b.Run(fmt.Sprintf("naive/E=%d", g.NumEdges()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reliability.Naive(g, dem, reliability.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("core/E=%d", g.NumEdges()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Reliability(g, dem, core.Options{Bottleneck: cut}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Beyond naive's reach: core alone keeps scaling (larger sides).
	for _, side := range []int{10, 12} {
		g, dem, cut := clusteredInstance(b, side)
		b.Run(fmt.Sprintf("core/E=%d", g.NumEdges()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Reliability(g, dem, core.Options{Bottleneck: cut}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBridge is experiment E2: the k=1 decomposition (Eq. 1) on the
// Fig. 2 bridge graph versus naive enumeration of the whole graph.
func BenchmarkBridge(b *testing.B) {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	b.Run("core-eq1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reliability.Naive(o.G, dem, reliability.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAssignments is experiment E3: enumerating the assignment family
// of Example 1 (d=5, caps (3,3,3) → 12 assignments) and larger ones.
func BenchmarkAssignments(b *testing.B) {
	cases := []struct {
		caps []int
		d    int
	}{
		{[]int{3, 3, 3}, 5},
		{[]int{4, 4, 4}, 7},
		{[]int{3, 3, 3, 3}, 6},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("d=%d,k=%d", c.d, len(c.caps)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assign.Enumerate(c.caps, c.d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4 is experiment E4: the full decomposition on the paper's
// two-bottleneck worked example.
func BenchmarkFigure4(b *testing.B) {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	for i := 0; i < b.N; i++ {
		if _, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck}); err != nil {
			b.Fatal(err)
		}
	}
}

// accumulationInstance builds a fixed two-cluster graph with three
// capacity-capE bottleneck links (Example 1's parameters give |𝒟| = 12 at
// d=5, capE=3) and 10 links per side, so the accumulation stage carries
// real weight.
func accumulationInstance(d, capE int) (*Graph, Demand, []EdgeID) {
	b := NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNode()
	c := b.AddNode()
	var x, y [3]NodeID
	for i := range x {
		x[i] = b.AddNode()
	}
	for i := range y {
		y[i] = b.AddNode()
	}
	e := b.AddNode()
	f := b.AddNode()
	t := b.AddNamedNode("t")
	big := d + capE
	const p = 0.1
	b.AddEdge(s, a, big, p)
	b.AddEdge(s, c, big, p)
	b.AddEdge(s, x[0], capE, p)
	b.AddEdge(a, x[0], capE, p)
	b.AddEdge(a, x[1], capE, p)
	b.AddEdge(c, x[1], capE, p)
	b.AddEdge(c, x[2], capE, p)
	b.AddEdge(s, x[2], capE, p)
	b.AddEdge(a, c, capE, p)
	b.AddEdge(c, x[0], capE, p)
	var cut []EdgeID
	for i := range x {
		cut = append(cut, b.AddEdge(x[i], y[i], capE, 0.05))
	}
	b.AddEdge(y[0], e, capE, p)
	b.AddEdge(y[0], t, capE, p)
	b.AddEdge(y[1], e, capE, p)
	b.AddEdge(y[1], f, capE, p)
	b.AddEdge(y[2], f, capE, p)
	b.AddEdge(y[2], t, capE, p)
	b.AddEdge(e, t, big, p)
	b.AddEdge(f, t, big, p)
	b.AddEdge(e, f, capE, p)
	b.AddEdge(y[0], f, capE, p)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g, Demand{S: s, T: t, D: d}, cut
}

// BenchmarkAccumulation is ablation A1: the paper-literal subset scan
// (Θ(2^{|𝒟|}·2^{|E_side|})) vs the zeta-transform aggregation
// (Θ(|𝒟|·2^{|𝒟|} + 2^{|E_side|})), at |𝒟| = 12 and |𝒟| = 18.
func BenchmarkAccumulation(b *testing.B) {
	for _, dc := range [][2]int{{5, 3}, {7, 4}} {
		g, dem, cut := accumulationInstance(dc[0], dc[1])
		for _, acc := range []struct {
			name string
			a    core.Accumulation
		}{{"direct", core.AccumDirect}, {"zeta", core.AccumZeta}} {
			b.Run(fmt.Sprintf("%s/d=%d", acc.name, dc[0]), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Reliability(g, dem, core.Options{
						Bottleneck: cut, Accum: acc.a, MaxAssignmentSet: 62,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSideArrays is ablation A2: per-configuration recompute vs
// Gray-code incremental maintenance vs the monotone frontier walk.
func BenchmarkSideArrays(b *testing.B) {
	g, dem, cut := clusteredInstanceB(b, 9)
	for _, side := range []struct {
		name string
		s    core.SideEngine
	}{{"binary", core.SideBinary}, {"graycode", core.SideGrayCode}, {"frontier", core.SideFrontier}} {
		b.Run(side.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Reliability(g, dem, core.Options{
					Bottleneck: cut, Side: side.s,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSideBuild isolates the side-array construction cost on the A3
// instance: one core compile per op (no plan cache, no evaluation weight
// to speak of), with the default frontier engine. Tracked by the bench
// gate as side_build_ns_per_op.
func BenchmarkSideBuild(b *testing.B) {
	g, dem, cut := clusteredInstance(b, 6)
	b.Run("frontier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Compile(g, dem, core.Options{Bottleneck: cut}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func clusteredInstanceB(b *testing.B, side int) (*Graph, Demand, []EdgeID) {
	b.Helper()
	o, err := overlay.Clustered(side, side+4, 2, 2, 2, 0.1, int64(side))
	if err != nil {
		b.Fatal(err)
	}
	return o.G, o.Demand(o.Peers[len(o.Peers)-1]), o.Bottleneck
}

// BenchmarkEngines is ablation A3: every exact engine on one 20-link
// instance.
func BenchmarkEngines(b *testing.B) {
	g, dem, cut := clusteredInstance(b, 6)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reliability.Naive(g, dem, reliability.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-gray", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reliability.Naive(g, dem, reliability.Options{GrayCode: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("factoring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reliability.Factoring(g, dem, reliability.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Reliability(g, dem, core.Options{Bottleneck: cut}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reliability.Bounds(g, dem, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMonteCarlo is ablation A4: sampling throughput (one op = 10 000
// samples).
func BenchmarkMonteCarlo(b *testing.B) {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	for i := 0; i < b.N; i++ {
		if _, err := reliability.MonteCarlo(o.G, dem, 10000, int64(i), reliability.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator is experiment E10: streaming-session throughput (one
// op = 10 000 sessions).
func BenchmarkSimulator(b *testing.B) {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(o.G, dem, sim.Config{Sessions: 10000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBottleneckSearch measures minimal-cut enumeration and the
// α-bottleneck selection (the preprocessing the paper assumes given).
func BenchmarkBottleneckSearch(b *testing.B) {
	g, dem, _ := clusteredInstance(b, 8)
	for i := 0; i < b.N; i++ {
		if _, err := FindBottleneck(g, dem.S, dem.T, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanReuse is ablation A8: the compile/evaluate split on the A3
// instance — a cold compile (side arrays built from scratch), a cache-hit
// compile (structural hash lookup only), and a single probability
// evaluation against the frozen arrays.
func BenchmarkPlanReuse(b *testing.B) {
	g, dem, _ := clusteredInstance(b, 6)
	b.Run("cold-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ResetPlanCache()
			if _, err := CompilePlan(g, dem, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ResetPlanCache()
	plan, err := CompilePlan(g, dem, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cached-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CompilePlan(g, dem, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	pf := plan.BasePFail()
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Eval(pf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalBatch measures batch evaluation throughput on the A3
// instance: 256 probability scenarios per op through the transposed block
// kernels (EvalBatchInto, tracked by the bench gate as
// eval_batch_ns_per_op) versus the same scenarios through the scalar
// evaluate phase the kernels replaced (eval_batch_scalar_ns_per_op — the
// pre-kernel baseline the ≥5× target in BENCH_7.json is measured
// against). Both sub-benchmarks also report scenarios/sec.
func BenchmarkEvalBatch(b *testing.B) {
	g, dem, _ := clusteredInstance(b, 6)
	ResetPlanCache()
	plan, err := CompilePlan(g, dem, Config{})
	if err != nil {
		b.Fatal(err)
	}
	base := plan.BasePFail()
	const batch = 256
	scenarios := make([][]float64, batch)
	for i := range scenarios {
		pf := make([]float64, len(base))
		sc := 2 * float64(i) / float64(batch-1)
		for j := range pf {
			pf[j] = base[j] * sc
			if pf[j] >= 1 {
				pf[j] = 0.999999
			}
		}
		scenarios[i] = pf
	}
	dst := make([]float64, batch)
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := plan.EvalBatchInto(dst, scenarios, EvalBatchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
	})
	b.Run("scalar", func(b *testing.B) {
		// The pre-kernel EvalBatch, reproduced exactly: one goroutine per
		// scenario behind a semaphore, each paying full validation and a
		// scalar evaluation.
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			sem := make(chan struct{}, runtime.GOMAXPROCS(0))
			for s := range scenarios {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					r, err := plan.core.EvalScalar(scenarios[s])
					if err != nil {
						panic(err)
					}
					dst[s] = r
				}(s)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
	})
}

// BenchmarkSweepModes is the 20-point `-mode scale` sweep both ways:
// per-point (rebuild the instance and pay a full solve at every scale
// factor — the pre-plan behaviour) vs planned (one compile, twenty
// probability evaluations). The planned variant asserts, via the compile
// statistics, that the whole sweep runs exactly one side-array
// construction: its max-flow call count equals a single cold compile's,
// and evaluation adds none.
func BenchmarkSweepModes(b *testing.B) {
	g, dem, _ := clusteredInstance(b, 6)
	const points = 20
	scales := make([]float64, points)
	for i := range scales {
		scales[i] = 2 * float64(i) / float64(points-1)
	}
	base := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		base[i] = e.PFail
	}
	scenarios := make([][]float64, points)
	for i, sc := range scales {
		pf := make([]float64, len(base))
		for j := range pf {
			pf[j] = base[j] * sc
			if pf[j] >= 1 {
				pf[j] = 0.999999
			}
		}
		scenarios[i] = pf
	}
	ResetPlanCache()
	ref, err := CompilePlan(g, dem, Config{})
	if err != nil {
		b.Fatal(err)
	}
	oneCompile := ref.MaxFlowCalls()

	b.Run("per-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, sc := range scales {
				ResetPlanCache()
				inst := rescaleProbs(b, g, sc)
				if _, err := Compute(inst, dem, Config{Engine: EngineCore}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ResetPlanCache()
			plan, err := CompilePlan(g, dem, Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := plan.EvalBatch(scenarios); err != nil {
				b.Fatal(err)
			}
			if calls := plan.MaxFlowCalls(); calls != oneCompile {
				b.Fatalf("sweep ran %d max-flow calls, want exactly one construction (%d)", calls, oneCompile)
			}
		}
	})
}

// BenchmarkChain is experiment E11: single-cut core vs the multi-cut chain
// solver on delivery chains of growing length.
func BenchmarkChain(b *testing.B) {
	for _, blocks := range []int{3, 4, 5} {
		o, cuts, err := overlay.Chain(blocks, 3, 2, 2, 2, 2, 0.1, int64(blocks))
		if err != nil {
			b.Fatal(err)
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])
		b.Run(fmt.Sprintf("chain/blocks=%d", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chain.Solve(o.G, dem, cuts, chain.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if blocks <= 4 {
			b.Run(fmt.Sprintf("core/blocks=%d", blocks), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Reliability(o.G, dem, core.Options{Bottleneck: cuts[0], MaxSideEdges: 40}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReduce is ablation A5: the exact preprocessing pass itself and
// its effect on a downstream factoring solve.
func BenchmarkReduce(b *testing.B) {
	o, err := overlay.MultiTree(12, 3, 2, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	b.Run("apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reduce.Apply(o.G, dem); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("factoring-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reliability.Factoring(o.G, dem, reliability.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	red, err := reduce.Apply(o.G, dem)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("factoring-reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reliability.Factoring(red.G, red.Demand, reliability.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMostProbableStates is ablation A6: certified bounds from
// bounded failure layers.
func BenchmarkMostProbableStates(b *testing.B) {
	g, dem, _ := clusteredInstance(b, 10)
	for _, budget := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("L=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reliability.MostProbableStates(g, dem, budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPolynomial is experiment E14: one enumeration yields the whole
// R(p) curve; evaluations afterwards are nearly free.
func BenchmarkPolynomial(b *testing.B) {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	b.Run("compute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := poly.Compute(o.G, dem, reliability.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	P, err := poly.Compute(o.G, dem, reliability.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			P.Eval(0.1)
		}
	})
}

// BenchmarkMulticast is experiment E12: all-subscribers reliability.
func BenchmarkMulticast(b *testing.B) {
	o, err := overlay.MultiTree(8, 2, 2, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := multicast.Naive(o.G, o.Source, o.Peers, 2, reliability.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContinuousSim is experiment E17: event-driven renewal
// simulation throughput (one op = horizon 1000 on the Fig. 2 graph).
func BenchmarkContinuousSim(b *testing.B) {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	dyn := sim.UniformDynamics(o.G, 20, 3)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Continuous(o.G, dem, sim.ContinuousConfig{
			Dynamics: dyn, Horizon: 1000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImportance is experiment E16: the full Birnbaum ranking
// (2|E| conditional factoring solves).
func BenchmarkImportance(b *testing.B) {
	g, dem, _ := clusteredInstance(b, 5)
	for i := 0; i < b.N; i++ {
		if _, err := reliability.BirnbaumImportance(g, dem, reliability.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRiskGroups is experiment E15: conditioning on shared-risk
// group states.
func BenchmarkRiskGroups(b *testing.B) {
	o, err := overlay.Clustered(5, 8, 2, 1, 2, 0.05, 6)
	if err != nil {
		b.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	groups := []srlg.Group{{PFail: 0.05, Links: o.Bottleneck}}
	for i := 0; i < b.N; i++ {
		if _, err := srlg.Reliability(o.G, dem, groups, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnTransform is experiment E13: node splitting plus a solve.
func BenchmarkChurnTransform(b *testing.B) {
	o, err := overlay.MultiTree(10, 2, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	deep := o.Peers[len(o.Peers)-1]
	var peers []churn.Peer
	for _, p := range o.Peers {
		if p != deep {
			peers = append(peers, churn.Peer{Node: p, PFail: 0.05})
		}
	}
	for i := 0; i < b.N; i++ {
		inst, err := churn.Transform(o.G, o.Demand(deep), peers)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reliability.Factoring(inst.G, inst.Demand, reliability.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistribution measures the deliverable-rate distribution engines
// (E9's partial-delivery metrics come from these).
func BenchmarkDistribution(b *testing.B) {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.Exact(o.G, dem, reliability.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("factored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.Factored(o.G, dem, reliability.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
