// Package flowrel computes the reliability of P2P streaming systems with
// bottleneck links: the probability that a capacitated network with
// independent probabilistic link failures still admits a flow demand
// D = (s, t, d) — a video stream of bit-rate d delivered from source s to
// sink t, divisible into d unit-rate sub-streams routed along different
// paths.
//
// It implements the exact decomposition algorithm of S. Fujita,
// "Reliability Calculation of P2P Streaming Systems with Bottleneck
// Links" (IEEE IPDPSW 2017), which runs in O(2^{α|E|}·|V|·|E|) time on
// graphs with a constant-size set of α-bottleneck links, alongside the
// naive O(2^{|E|}·|V|·|E|) enumeration baseline, a factoring
// (conditioning) solver, a Monte Carlo estimator, guaranteed bounds, P2P
// overlay generators, and a session-level streaming simulator.
//
// Quick start:
//
//	b := flowrel.NewBuilder()
//	s := b.AddNamedNode("s")
//	t := b.AddNamedNode("t")
//	b.AddEdge(s, t, 1, 0.1) // capacity 1, failure probability 0.1
//	g, _ := b.Build()
//	r, _ := flowrel.Reliability(g, flowrel.Demand{S: s, T: t, D: 1})
//
// Links are directed along the delivery direction; model a full-duplex
// connection as two anti-parallel links.
package flowrel

import (
	"io"
	"math/big"

	"flowrel/internal/graph"
)

// Core model types, re-exported from the internal packages.
type (
	// Graph is a directed capacitated probabilistic multigraph.
	Graph = graph.Graph
	// Builder incrementally constructs a Graph.
	Builder = graph.Builder
	// Demand is a flow demand D = (s, t, d).
	Demand = graph.Demand
	// NodeID identifies a node (dense indices from 0).
	NodeID = graph.NodeID
	// EdgeID identifies a link (dense indices from 0).
	EdgeID = graph.EdgeID
	// Edge is one directed link with capacity and failure probability.
	Edge = graph.Edge
	// File bundles a graph and an optional demand for the text and JSON
	// codecs.
	File = graph.File
)

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// ParseText reads the line-oriented graph description format:
//
//	node s
//	edge s t 3 0.1     # link s→t, capacity 3, failure probability 0.1
//	demand s t 2
func ParseText(r io.Reader) (*File, error) { return graph.ParseText(r) }

// ParseTextString is ParseText on a string.
func ParseTextString(s string) (*File, error) { return graph.ParseTextString(s) }

// Rat is the exact rational type used by the oracle engine.
type Rat = big.Rat
