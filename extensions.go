package flowrel

import (
	"context"
	"io"

	"flowrel/internal/anytime"
	"flowrel/internal/chain"
	"flowrel/internal/churn"
	"flowrel/internal/dist"
	"flowrel/internal/graph"
	"flowrel/internal/multicast"
	"flowrel/internal/poly"
	"flowrel/internal/reduce"
	"flowrel/internal/reliability"
	"flowrel/internal/srlg"
)

// Distribution is the probability law of the deliverable rate min(F, d):
// one computation answers every partial-delivery question (full stream,
// at-least-j layers, expected delivered fraction).
type Distribution = dist.Distribution

// FlowDistribution computes the exact law of the deliverable rate by one
// enumeration of all 2^{|E|} failure configurations (same cost as a naive
// reliability computation). For graphs beyond enumeration use
// FlowDistributionFactored or FlowDistributionSampled.
func FlowDistribution(g *Graph, dem Demand) (Distribution, error) {
	return dist.Exact(g, dem, reliability.Options{})
}

// FlowDistributionFactored computes the same law as d tail reliabilities
// with the pruned factoring engine — slower per point, far larger reach.
func FlowDistributionFactored(g *Graph, dem Demand) (Distribution, error) {
	return dist.Factored(g, dem, reliability.Options{})
}

// FlowDistributionSampled estimates the law by Monte Carlo; deterministic
// per seed.
func FlowDistributionSampled(g *Graph, dem Demand, samples int, seed int64) (Distribution, error) {
	return dist.Sampled(g, dem, samples, seed, reliability.Options{})
}

// FlowDistributionCtx is FlowDistribution under a context and budget. An
// interrupted run returns a Partial distribution: every tail AtLeast(j)
// is a certified lower bound over the examined mass.
func FlowDistributionCtx(ctx context.Context, g *Graph, dem Demand, b Budget) (Distribution, error) {
	return dist.Exact(g, dem, reliability.Options{Ctl: anytime.New(ctx, b)})
}

// FlowDistributionFactoredCtx is FlowDistributionFactored under a context
// and budget; interrupted tails degrade to their certified lower bounds.
func FlowDistributionFactoredCtx(ctx context.Context, g *Graph, dem Demand, b Budget) (Distribution, error) {
	return dist.Factored(g, dem, reliability.Options{Ctl: anytime.New(ctx, b)})
}

// FlowDistributionSampledCtx is FlowDistributionSampled under a context
// and budget; an interrupted run is a valid estimate over the samples
// actually completed, with Partial set.
func FlowDistributionSampledCtx(ctx context.Context, g *Graph, dem Demand, samples int, seed int64, b Budget) (Distribution, error) {
	return dist.Sampled(g, dem, samples, seed, reliability.Options{Ctl: anytime.New(ctx, b)})
}

// Reduced is a preprocessed instance with identical reliability.
type Reduced = reduce.Result

// Reduce applies exact reliability-preserving reductions (capacity
// clipping, irrelevant-link removal, series and parallel merges) and
// returns the smaller equivalent instance. Because every exact engine is
// exponential in the link count, reducing first can shrink the work by
// orders of magnitude; the result's Demand addresses the reduced graph.
func Reduce(g *Graph, dem Demand) (*Reduced, error) {
	return reduce.Apply(g, dem)
}

// MostProbableStates computes certified reliability bounds by examining
// only configurations with at most maxFailures failed links, plus the
// exact probability mass of everything beyond — the method of choice for
// large, reliable networks (the interval width is exactly the unexamined
// tail mass, shrinking geometrically with the budget).
func MostProbableStates(g *Graph, dem Demand, maxFailures int) (Bound, error) {
	return reliability.MostProbableStates(g, dem, maxFailures)
}

// FailureLayerMass returns P(exactly i links fail) for i ≤ maxFailures and
// the exact tail P(> maxFailures); use it to pick a MostProbableStates
// budget.
func FailureLayerMass(g *Graph, maxFailures int) (layers []float64, tail float64) {
	return reliability.FailureLayerMass(g, maxFailures)
}

// ChainResult is a chain-decomposition answer.
type ChainResult = chain.Result

// ChainOptions tunes the chain solver.
type ChainOptions = chain.Options

// ChainReliability computes the exact reliability by decomposing the graph
// along a *sequence* of disjoint minimal s–t cuts — the generalization of
// the paper's single-bottleneck algorithm to delivery chains
// (cluster → backbone → … → subscriber). With r cuts the cost is the sum
// of the segments' 2^{|Eᵢ|} enumerations instead of one 2^{α|E|} term.
// Pass the cuts explicitly, or nil to search for them automatically.
func ChainReliability(g *Graph, dem Demand, cuts [][]EdgeID, opt ChainOptions) (ChainResult, error) {
	if cuts == nil {
		found, err := chain.Find(g, dem, 3, 0)
		if err != nil {
			return ChainResult{}, err
		}
		cuts = found
	}
	return chain.Solve(g, dem, cuts, opt)
}

// FindChain searches for a sequence of disjoint minimal s–t cuts (each of
// at most maxCutSize links; at most maxCuts of them, 0 = unlimited) that
// decomposes the graph into a chain of segments.
func FindChain(g *Graph, dem Demand, maxCutSize, maxCuts int) ([][]EdgeID, error) {
	return chain.Find(g, dem, maxCutSize, maxCuts)
}

// ChainOverlay builds a delivery chain of strongly connected random blocks
// joined in series by k-link cuts; it returns the overlay and the planted
// cut sequence (source side first), ready for ChainReliability.
func ChainOverlay(blocks, blockNodes, extraEdges, k, d, maxCap int, pFail float64, seed int64) (*Overlay, [][]EdgeID, error) {
	return overlayChain(blocks, blockNodes, extraEdges, k, d, maxCap, pFail, seed)
}

// LinkImportance ranks one link's contribution to the reliability.
type LinkImportance = reliability.Importance

// BirnbaumImportance computes, for every link, the Birnbaum importance
// ∂R/∂(availability) = R(link up) − R(link down) and the achievement
// worth R(link up) − R. Bottleneck links dominate the ranking — this is
// the quantitative form of "which links should the operator harden first".
// When the instance admits the bottleneck decomposition, the structure is
// compiled once and each conditional is a probability evaluation
// (p(e) ∈ {0, 1}); otherwise it costs 2|E| factoring computations.
func BirnbaumImportance(g *Graph, dem Demand) ([]LinkImportance, error) {
	if g != nil {
		if plan, err := CompilePlan(g, dem, Config{}); err == nil {
			return birnbaumFromPlan(g, plan)
		}
	}
	return reliability.BirnbaumImportance(g, dem, reliability.Options{})
}

// UpgradePlan is a greedy hardening plan.
type UpgradePlan = reliability.UpgradePlan

// SuggestUpgrades greedily picks up to budget links whose hardening
// (p → 0) buys the most reliability, re-evaluating after every pick.
// Optimal for budget 1, a strong heuristic beyond. On instances the
// bottleneck decomposition admits, the whole greedy search runs against
// one compiled plan (hardening is a probability edit), with the winning
// candidate's value carried over as the next round's baseline.
func SuggestUpgrades(g *Graph, dem Demand, budget int) (UpgradePlan, error) {
	if g != nil && budget >= 1 {
		if plan, err := CompilePlan(g, dem, Config{}); err == nil {
			return upgradesFromPlan(plan, budget)
		}
	}
	return reliability.SuggestUpgrades(g, dem, budget, reliability.Options{})
}

// Peer describes a fallible node for the churn model.
type Peer = churn.Peer

// ChurnInstance is a node-split transformation of a peer-churn model into
// an ordinary link-failure instance.
type ChurnInstance = churn.Instance

// WithChurn transforms peer failures (the dominant fault in P2P systems)
// into an equivalent link-failure instance by node splitting: each
// fallible peer becomes in→out halves joined by an internal link carrying
// the peer's absence probability and relay capacity. Solve the returned
// instance with any engine:
//
//	inst, _ := flowrel.WithChurn(g, dem, peers)
//	r, _ := flowrel.Reliability(inst.G, inst.Demand)
func WithChurn(g *Graph, dem Demand, peers []Peer) (*ChurnInstance, error) {
	return churn.Transform(g, dem, peers)
}

// ReliabilityPolynomial is the flow-reliability polynomial for a uniform
// link failure probability p: R(p) = Σ N_i (1-p)^i p^{m-i}.
type ReliabilityPolynomial = poly.Polynomial

// Polynomial computes the reliability polynomial with one 2^{|E|}
// enumeration; afterwards any sweep over link quality is a polynomial
// evaluation (per-link probabilities in g are ignored — p is the
// variable).
func Polynomial(g *Graph, dem Demand) (ReliabilityPolynomial, error) {
	return poly.Compute(g, dem, reliability.Options{})
}

// PolynomialCtx is Polynomial under a context and budget. The coefficient
// counts certify nothing until the enumeration completes — a missing
// configuration could shift any N_i — so an interrupted run returns an
// error wrapping ErrInterrupted instead of a partial polynomial.
func PolynomialCtx(ctx context.Context, g *Graph, dem Demand, b Budget) (ReliabilityPolynomial, error) {
	return poly.Compute(g, dem, reliability.Options{Ctl: anytime.New(ctx, b)})
}

// RiskGroup is a shared-risk link group: its member links all fail
// together with the group's probability, on top of their own independent
// failures.
type RiskGroup = srlg.Group

// ReliabilityWithRiskGroups computes the exact reliability under
// correlated failures by conditioning on the 2^g group states. When the
// instance admits the bottleneck decomposition each state is one
// probability evaluation against a single compiled plan (a failed group's
// links get p = 1); otherwise each conditional instance goes to the
// factoring engine.
func ReliabilityWithRiskGroups(g *Graph, dem Demand, groups []RiskGroup) (float64, error) {
	return srlg.Reliability(g, dem, groups, nil)
}

// RiskGroupMonteCarlo estimates the correlated-failure reliability by
// sampling group and link states jointly; deterministic per seed.
func RiskGroupMonteCarlo(g *Graph, dem Demand, groups []RiskGroup, samples int, seed int64) (Estimate, error) {
	return srlg.MonteCarlo(g, dem, groups, samples, seed)
}

// UnreliabilityIS estimates the UNreliability U = 1 − R by importance
// sampling with failure biasing — the estimator of choice for highly
// reliable networks, where plain Monte Carlo wastes nearly every sample
// on all-up configurations. The returned Estimate describes U; bias in
// (0, 1), 0.25–0.5 a robust default.
func UnreliabilityIS(g *Graph, dem Demand, samples int, seed int64, bias float64) (Estimate, error) {
	return reliability.UnreliabilityIS(g, dem, samples, seed, bias, reliability.Options{})
}

// MulticastResult is an exact all-targets reliability.
type MulticastResult = multicast.Result

// MulticastReliability computes the probability that *every* target can
// receive all d sub-streams simultaneously. Targets nil means every node
// except the source. The stream is replicated (a link carries each
// sub-stream once for all downstream readers), so by Edmonds'
// arborescence-packing theorem the per-target max-flow criterion is exact.
// Enumerates 2^{|E|} configurations; use MulticastMonteCarlo beyond that.
func MulticastReliability(g *Graph, source NodeID, targets []NodeID, d int) (MulticastResult, error) {
	return multicast.Naive(g, source, targets, d, reliability.Options{})
}

// MulticastMonteCarlo estimates the all-targets reliability by sampling;
// deterministic per seed, any graph size.
func MulticastMonteCarlo(g *Graph, source NodeID, targets []NodeID, d, samples int, seed int64) (Estimate, error) {
	return multicast.MonteCarlo(g, source, targets, d, samples, seed, reliability.Options{})
}

// MulticastReliabilityCtx is MulticastReliability under a context and
// budget: an interrupted run returns a Partial result with a certified
// interval [Lo, Hi] around the true all-targets reliability.
func MulticastReliabilityCtx(ctx context.Context, g *Graph, source NodeID, targets []NodeID, d int, b Budget) (MulticastResult, error) {
	return multicast.Naive(g, source, targets, d, reliability.Options{Ctl: anytime.New(ctx, b)})
}

// MulticastMonteCarloCtx is MulticastMonteCarlo under a context and
// budget; an interrupted run estimates over the completed samples with
// Partial set.
func MulticastMonteCarloCtx(ctx context.Context, g *Graph, source NodeID, targets []NodeID, d, samples int, seed int64, b Budget) (Estimate, error) {
	return multicast.MonteCarlo(g, source, targets, d, samples, seed, reliability.Options{Ctl: anytime.New(ctx, b)})
}

// PerTargetReliability returns each target's marginal reliability,
// computed exactly with the factoring engine.
func PerTargetReliability(g *Graph, source NodeID, targets []NodeID, d int) ([]float64, error) {
	return multicast.PerTarget(g, source, targets, d, reliability.Options{})
}

// DOTOptions customizes WriteDOT output.
type DOTOptions = graph.DOTOptions

// WriteDOT renders the graph in Graphviz DOT format (pipe through `dot
// -Tsvg` to visualize bottleneck structure).
func WriteDOT(w io.Writer, g *Graph, opt DOTOptions) error {
	return g.WriteDOT(w, opt)
}
