// flowrel is pure standard library by design: the supply chain of a
// reliability calculator should itself be auditable. That includes the
// static-analysis suite — internal/analysis re-creates the narrow
// go/analysis surface flowrelvet needs instead of depending on
// golang.org/x/tools (see docs/ANALYZERS.md).
module flowrel

go 1.22
