module flowrel

go 1.22
