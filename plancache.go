package flowrel

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"flowrel/internal/anytime"
	"flowrel/internal/core"
	"flowrel/internal/stats"
)

// The plan cache memoizes compiled bottleneck plans by the *structure* of
// the instance — topology, capacities, demand and the decomposition
// bounds, but NOT the failure probabilities, which belong to the evaluate
// phase. Repeated Compute/CompilePlan calls on the same structure (a sweep
// that only re-weights links, a what-if loop, a dashboard refresh) skip
// the entire O(2^{α|E|}) side-array construction and pay only the
// microsecond evaluation. Hits return results bit-identical to a cold
// compile, because evaluation is deterministic given the plan.
//
// The cache is striped into planCacheShards independent shards, selected
// by the first byte of the structural hash. Each shard owns its mutex,
// LRU list and in-flight compile table, so a hot structural key — one
// subscriber topology every edge server asks about — serializes only the
// callers that actually share it; lookups and compiles of distinct keys
// on distinct shards never touch the same lock.

// defaultPlanCacheCapacity is the default number of compiled plans kept.
// A plan's dominant memory is its two realization arrays
// (8·2^{|E_side|} bytes each, ≤ 8 MiB at the default MaxSideEdges 20).
const defaultPlanCacheCapacity = 64

// planCacheShards is the default stripe count (a power of two; the shard
// index is the first byte of the SHA-256 structural key masked down).
const planCacheShards = 16

// planShard is one stripe of the cache: a self-contained LRU with its own
// lock, counters and singleflight table. All cross-shard state lives in
// planCacheType; a shard never takes another shard's lock.
type planShard struct {
	mu       sync.Mutex
	capacity int        // per-shard entry bound; ≤ 0 disables caching in this shard
	order    *list.List // front = most recently used; values are *planEntry
	byKey    map[string]*list.Element
	hits     uint64
	misses   uint64
	evicts   uint64
	dedups   uint64
	inflight map[string]*inflightCompile
}

type planCacheType struct {
	shards   []*planShard
	capacity int // configured total capacity, split across shards
	// off mirrors capacity ≤ 0 for lock-free reads: with caching disabled
	// the lookup paths skip the structural hash and the singleflight
	// machinery entirely and compile directly.
	off atomic.Bool
}

type planEntry struct {
	key  string
	plan *core.Plan
}

// inflightCompile is the singleflight cell for one structural key: the
// first caller (leader) compiles while later callers wait on done. A
// leader failure leaves plan nil with err set; waiters then retry the
// whole lookup so a transient cancellation doesn't poison the key.
type inflightCompile struct {
	done chan struct{}
	plan *core.Plan
	err  error
}

// Registry mirrors of the cache counters, so the expvar/-stats surfaces
// see cache behaviour without a separate code path. The mutex-guarded
// uint64 fields on the shards remain the source of truth for tests (they
// are exact regardless of stats.SetEnabled).
var (
	mCacheHits   = stats.Default.Counter("plancache.hits")
	mCacheMisses = stats.Default.Counter("plancache.misses")
	mCacheEvicts = stats.Default.Counter("plancache.evictions")
	mCacheDedups = stats.Default.Counter("plancache.compile_dedup")
)

// newPlanCache builds a cache with the given stripe count (rounded up to
// a power of two) and total capacity.
func newPlanCache(shards, capacity int) *planCacheType {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &planCacheType{shards: make([]*planShard, n)}
	for i := range c.shards {
		c.shards[i] = &planShard{
			order:    list.New(),
			byKey:    make(map[string]*list.Element),
			inflight: make(map[string]*inflightCompile),
		}
	}
	c.setCapacity(capacity)
	return c
}

var planCache = newPlanCache(planCacheShards, defaultPlanCacheCapacity)

// shardIndex maps a structural key to its stripe. SHA-256 output is
// uniform, so the first byte alone spreads keys evenly.
func (c *planCacheType) shardIndex(key string) int {
	if len(key) == 0 {
		return 0
	}
	return int(key[0]) & (len(c.shards) - 1)
}

// shardFor returns the stripe owning key.
func (c *planCacheType) shardFor(key string) *planShard {
	return c.shards[c.shardIndex(key)]
}

// setCapacity records the total capacity and splits it across shards,
// evicting per shard as needed. With a single shard the per-shard bound
// equals the total, preserving the exact global-LRU semantics; with many
// shards each holds at most ⌈capacity/shards⌉ entries, so the total stays
// within one rounding step of the configured bound.
func (c *planCacheType) setCapacity(n int) {
	c.capacity = n
	c.off.Store(n <= 0)
	per := 0
	if n > 0 {
		per = (n + len(c.shards) - 1) / len(c.shards)
	}
	for _, s := range c.shards {
		s.mu.Lock()
		s.capacity = per
		evictTo := per
		if n <= 0 {
			evictTo = 0
		}
		s.evictOverCapacityLocked(evictTo)
		s.mu.Unlock()
	}
}

// acquire resolves one lookup atomically within the key's shard: a cached
// plan (hit), an in-flight compile to wait on (dedup), or leadership of a
// new compile (miss). Counting here keeps the three outcomes mutually
// exclusive — hits + misses + dedups equals total lookups, and misses
// equals compiles started.
func (s *planShard) acquire(key string) (p *core.Plan, hit bool, fl *inflightCompile, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		s.order.MoveToFront(el)
		s.hits++
		mCacheHits.Inc()
		return el.Value.(*planEntry).plan, true, nil, false
	}
	if fl, ok := s.inflight[key]; ok {
		s.dedups++
		mCacheDedups.Inc()
		return nil, false, fl, false
	}
	s.misses++
	mCacheMisses.Inc()
	fl = &inflightCompile{done: make(chan struct{})}
	s.inflight[key] = fl
	return nil, false, fl, true
}

func (s *planShard) put(key string, p *core.Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity <= 0 {
		return
	}
	if el, ok := s.byKey[key]; ok {
		el.Value.(*planEntry).plan = p
		s.order.MoveToFront(el)
		return
	}
	s.byKey[key] = s.order.PushFront(&planEntry{key: key, plan: p})
	s.evictOverCapacityLocked(s.capacity)
}

// evictOverCapacityLocked trims LRU entries beyond n, counting each
// eviction. Callers hold s.mu.
func (s *planShard) evictOverCapacityLocked(n int) {
	for s.order.Len() > n {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byKey, oldest.Value.(*planEntry).key)
		s.evicts++
		mCacheEvicts.Inc()
	}
}

// ResetPlanCache drops every cached compiled plan and zeroes the hit,
// miss, eviction and dedup counters. Use it in benchmarks to measure cold
// compiles, or to release the realization-array memory of plans no longer
// needed. In-flight compiles are unaffected: their leaders publish into
// the fresh cache when done.
func ResetPlanCache() {
	for _, s := range planCache.shards {
		s.mu.Lock()
		s.order.Init()
		s.byKey = make(map[string]*list.Element)
		s.hits, s.misses = 0, 0
		s.evicts, s.dedups = 0, 0
		s.mu.Unlock()
	}
}

// SetPlanCacheCapacity bounds the number of compiled plans kept (LRU
// eviction beyond it); n ≤ 0 disables caching entirely. The default is
// 64. The bound is split evenly across the cache's shards, so with the
// default 16 stripes the total entry count stays within ⌈n/16⌉·16 of the
// requested bound.
func SetPlanCacheCapacity(n int) {
	planCache.setCapacity(n)
}

// PlanCacheStats reports the cache's lifetime hit and miss counts and its
// current entry count (since process start or the last ResetPlanCache),
// summed across shards.
func PlanCacheStats() (hits, misses uint64, entries int) {
	pc := PlanCacheSnapshot()
	return pc.Hits, pc.Misses, pc.Entries
}

// PlanCacheCounters is the full accounting snapshot of the plan cache.
type PlanCacheCounters struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Evictions    uint64 `json:"evictions"`
	CompileDedup uint64 `json:"compile_dedup"`
	Entries      int    `json:"entries"`
	Shards       int    `json:"shards"`
}

// PlanCacheSnapshot returns every plan-cache counter at once: hits,
// misses, LRU evictions, compiles saved by in-flight deduplication, the
// current entry count, and the shard count. Counters accumulate since
// process start or the last ResetPlanCache and are summed across shards;
// the aggregate is not a single atomic cut across stripes, but each
// shard's contribution is internally consistent.
func PlanCacheSnapshot() PlanCacheCounters {
	pc := PlanCacheCounters{Shards: len(planCache.shards)}
	for _, s := range planCache.shards {
		s.mu.Lock()
		pc.Hits += s.hits
		pc.Misses += s.misses
		pc.Evictions += s.evicts
		pc.CompileDedup += s.dedups
		pc.Entries += s.order.Len()
		s.mu.Unlock()
	}
	return pc
}

// planKey is the canonical structural hash: topology (node count plus
// every link's endpoints), capacities, demand, and the Config fields that
// steer the decomposition. Failure probabilities are deliberately
// excluded — they are evaluate-phase inputs.
func planKey(g *Graph, dem Demand, cfg Config) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	h.Write([]byte("flowrel-plan-v1"))
	writeInt(int64(g.NumNodes()))
	writeInt(int64(g.NumEdges()))
	for _, e := range g.Edges() {
		writeInt(int64(e.U))
		writeInt(int64(e.V))
		writeInt(int64(e.Cap))
	}
	writeInt(int64(dem.S))
	writeInt(int64(dem.T))
	writeInt(int64(dem.D))
	// Effective decomposition bounds (defaults resolved, so spelling the
	// default explicitly still hits).
	mb, mse, mas := cfg.MaxBottleneck, cfg.MaxSideEdges, cfg.MaxAssignmentSet
	if mb <= 0 {
		mb = 3
	}
	if mse <= 0 {
		mse = 20
	}
	if mas <= 0 {
		mas = 20
	}
	writeInt(int64(mb))
	writeInt(int64(mse))
	writeInt(int64(mas))
	if cfg.Bottleneck == nil {
		writeInt(-1)
	} else {
		writeInt(int64(len(cfg.Bottleneck)))
		for _, e := range cfg.Bottleneck {
			writeInt(int64(e))
		}
	}
	return string(h.Sum(nil))
}

// StructuralHash returns the hex-encoded structural cache key of
// (g, dem, cfg): the hash the plan cache shards and deduplicates compiles
// by. Two instances share a hash exactly when they share topology,
// capacities, demand and decomposition bounds — failure probabilities do
// not contribute. Services use it as a stable plan handle.
func StructuralHash(g *Graph, dem Demand, cfg Config) string {
	return hex.EncodeToString([]byte(planKey(g, dem, cfg)))
}

// planFor returns the compiled plan for (g, dem, cfg), from cache when the
// structure was compiled before, compiling (and caching) otherwise. The
// second return reports a cache hit. Concurrent calls for the same
// structure are deduplicated within its shard: one leader compiles, the
// rest wait for its plan (each saved compile increments the dedup
// counter). If the leader fails — typically a budget or cancellation
// error scoped to *its* controller — waiters retry with their own, so one
// caller's tight budget cannot fail another's compile.
func planFor(ctl *anytime.Ctl, g *Graph, dem Demand, cfg Config) (*core.Plan, bool, error) {
	if planCache.off.Load() {
		p, err := core.Compile(g, dem, core.Options{
			Bottleneck:       cfg.Bottleneck,
			MaxBottleneck:    cfg.MaxBottleneck,
			MaxSideEdges:     cfg.MaxSideEdges,
			MaxAssignmentSet: cfg.MaxAssignmentSet,
			Parallelism:      cfg.Parallelism,
			Ctl:              ctl,
		})
		return p, false, err
	}
	key := planKey(g, dem, cfg)
	shard := planCache.shardFor(key)
	for {
		p, hit, fl, leader := shard.acquire(key)
		if hit {
			return p, true, nil
		}
		if !leader {
			select {
			case <-fl.done:
			case <-ctl.Context().Done():
				err := ctl.Err()
				if err == nil {
					err = ctl.Context().Err()
				}
				return nil, false, err
			}
			if fl.err == nil {
				return fl.plan, true, nil
			}
			// Leader failed; loop and compile under our own controller.
			continue
		}

		p, err := core.Compile(g, dem, core.Options{
			Bottleneck:       cfg.Bottleneck,
			MaxBottleneck:    cfg.MaxBottleneck,
			MaxSideEdges:     cfg.MaxSideEdges,
			MaxAssignmentSet: cfg.MaxAssignmentSet,
			Parallelism:      cfg.Parallelism,
			Ctl:              ctl,
		})
		fl.plan, fl.err = p, err
		shard.mu.Lock()
		delete(shard.inflight, key)
		shard.mu.Unlock()
		close(fl.done)
		if err != nil {
			return nil, false, err
		}
		shard.put(key, p)
		return p, false, nil
	}
}

// planForMutate is planFor for a mutation successor: the mutated graph's
// own structural key is looked up first — churn cycles (a peer leaves and
// rejoins, a capacity flaps back) resolve to cache hits with zero compile
// work — and on a miss the leader runs the delta compiler against the
// parent plan instead of a cold compile. The child is cached under its
// own key, so it never aliases the parent's entry and later CompilePlan
// calls on the mutated structure hit it directly.
func planForMutate(ctl *anytime.Ctl, parent *core.Plan, gOld, g *Graph, dem Demand, cfg Config, mut Mutation, remap []EdgeID) (*core.Plan, bool, error) {
	if planCache.off.Load() {
		p, err := core.MutatePlan(parent, gOld, g, dem, mut, remap, core.Options{
			Bottleneck:       cfg.Bottleneck,
			MaxBottleneck:    cfg.MaxBottleneck,
			MaxSideEdges:     cfg.MaxSideEdges,
			MaxAssignmentSet: cfg.MaxAssignmentSet,
			Parallelism:      cfg.Parallelism,
			Ctl:              ctl,
		})
		return p, false, err
	}
	key := planKey(g, dem, cfg)
	shard := planCache.shardFor(key)
	for {
		p, hit, fl, leader := shard.acquire(key)
		if hit {
			return p, true, nil
		}
		if !leader {
			select {
			case <-fl.done:
			case <-ctl.Context().Done():
				err := ctl.Err()
				if err == nil {
					err = ctl.Context().Err()
				}
				return nil, false, err
			}
			if fl.err == nil {
				return fl.plan, true, nil
			}
			continue
		}

		p, err := core.MutatePlan(parent, gOld, g, dem, mut, remap, core.Options{
			Bottleneck:       cfg.Bottleneck,
			MaxBottleneck:    cfg.MaxBottleneck,
			MaxSideEdges:     cfg.MaxSideEdges,
			MaxAssignmentSet: cfg.MaxAssignmentSet,
			Parallelism:      cfg.Parallelism,
			Ctl:              ctl,
		})
		fl.plan, fl.err = p, err
		shard.mu.Lock()
		delete(shard.inflight, key)
		shard.mu.Unlock()
		close(fl.done)
		if err != nil {
			return nil, false, err
		}
		shard.put(key, p)
		return p, false, nil
	}
}
