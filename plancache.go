package flowrel

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/core"
	"flowrel/internal/stats"
)

// The plan cache memoizes compiled bottleneck plans by the *structure* of
// the instance — topology, capacities, demand and the decomposition
// bounds, but NOT the failure probabilities, which belong to the evaluate
// phase. Repeated Compute/CompilePlan calls on the same structure (a sweep
// that only re-weights links, a what-if loop, a dashboard refresh) skip
// the entire O(2^{α|E|}) side-array construction and pay only the
// microsecond evaluation. Hits return results bit-identical to a cold
// compile, because evaluation is deterministic given the plan.

// defaultPlanCacheCapacity is the default number of compiled plans kept.
// A plan's dominant memory is its two realization arrays
// (8·2^{|E_side|} bytes each, ≤ 8 MiB at the default MaxSideEdges 20).
const defaultPlanCacheCapacity = 64

type planCacheType struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *planEntry
	byKey    map[string]*list.Element
	hits     uint64
	misses   uint64
	evicts   uint64
	dedups   uint64
	inflight map[string]*inflightCompile
}

type planEntry struct {
	key  string
	plan *core.Plan
}

// inflightCompile is the singleflight cell for one structural key: the
// first caller (leader) compiles while later callers wait on done. A
// leader failure leaves plan nil with err set; waiters then retry the
// whole lookup so a transient cancellation doesn't poison the key.
type inflightCompile struct {
	done chan struct{}
	plan *core.Plan
	err  error
}

// Registry mirrors of the cache counters, so the expvar/-stats surfaces
// see cache behaviour without a separate code path. The mutex-guarded
// uint64 fields above remain the source of truth for tests (they are
// exact regardless of stats.SetEnabled).
var (
	mCacheHits   = stats.Default.Counter("plancache.hits")
	mCacheMisses = stats.Default.Counter("plancache.misses")
	mCacheEvicts = stats.Default.Counter("plancache.evictions")
	mCacheDedups = stats.Default.Counter("plancache.compile_dedup")
)

var planCache = &planCacheType{
	capacity: defaultPlanCacheCapacity,
	order:    list.New(),
	byKey:    make(map[string]*list.Element),
	inflight: make(map[string]*inflightCompile),
}

// acquire resolves one lookup atomically: a cached plan (hit), an
// in-flight compile to wait on (dedup), or leadership of a new compile
// (miss). Counting here keeps the three outcomes mutually exclusive —
// hits + misses + dedups equals total lookups, and misses equals
// compiles started.
func (c *planCacheType) acquire(key string) (p *core.Plan, hit bool, fl *inflightCompile, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		mCacheHits.Inc()
		return el.Value.(*planEntry).plan, true, nil, false
	}
	if fl, ok := c.inflight[key]; ok {
		c.dedups++
		mCacheDedups.Inc()
		return nil, false, fl, false
	}
	c.misses++
	mCacheMisses.Inc()
	fl = &inflightCompile{done: make(chan struct{})}
	c.inflight[key] = fl
	return nil, false, fl, true
}

func (c *planCacheType) put(key string, p *core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&planEntry{key: key, plan: p})
	c.evictOverCapacityLocked(c.capacity)
}

// evictOverCapacityLocked trims LRU entries beyond n, counting each
// eviction. Callers hold c.mu.
func (c *planCacheType) evictOverCapacityLocked(n int) {
	for c.order.Len() > n {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*planEntry).key)
		c.evicts++
		mCacheEvicts.Inc()
	}
}

// ResetPlanCache drops every cached compiled plan and zeroes the hit,
// miss, eviction and dedup counters. Use it in benchmarks to measure cold
// compiles, or to release the realization-array memory of plans no longer
// needed. In-flight compiles are unaffected: their leaders publish into
// the fresh cache when done.
func ResetPlanCache() {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	planCache.order.Init()
	planCache.byKey = make(map[string]*list.Element)
	planCache.hits, planCache.misses = 0, 0
	planCache.evicts, planCache.dedups = 0, 0
}

// SetPlanCacheCapacity bounds the number of compiled plans kept (LRU
// eviction beyond it); n ≤ 0 disables caching entirely. The default is 64.
func SetPlanCacheCapacity(n int) {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	planCache.capacity = n
	if n < 0 {
		n = 0
	}
	planCache.evictOverCapacityLocked(n)
}

// PlanCacheStats reports the cache's lifetime hit and miss counts and its
// current entry count (since process start or the last ResetPlanCache).
func PlanCacheStats() (hits, misses uint64, entries int) {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	return planCache.hits, planCache.misses, planCache.order.Len()
}

// PlanCacheCounters is the full accounting snapshot of the plan cache.
type PlanCacheCounters struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Evictions    uint64 `json:"evictions"`
	CompileDedup uint64 `json:"compile_dedup"`
	Entries      int    `json:"entries"`
}

// PlanCacheSnapshot returns every plan-cache counter at once: hits,
// misses, LRU evictions, compiles saved by in-flight deduplication, and
// the current entry count. Counters accumulate since process start or the
// last ResetPlanCache.
func PlanCacheSnapshot() PlanCacheCounters {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	return PlanCacheCounters{
		Hits:         planCache.hits,
		Misses:       planCache.misses,
		Evictions:    planCache.evicts,
		CompileDedup: planCache.dedups,
		Entries:      planCache.order.Len(),
	}
}

// planKey is the canonical structural hash: topology (node count plus
// every link's endpoints), capacities, demand, and the Config fields that
// steer the decomposition. Failure probabilities are deliberately
// excluded — they are evaluate-phase inputs.
func planKey(g *Graph, dem Demand, cfg Config) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	h.Write([]byte("flowrel-plan-v1"))
	writeInt(int64(g.NumNodes()))
	writeInt(int64(g.NumEdges()))
	for _, e := range g.Edges() {
		writeInt(int64(e.U))
		writeInt(int64(e.V))
		writeInt(int64(e.Cap))
	}
	writeInt(int64(dem.S))
	writeInt(int64(dem.T))
	writeInt(int64(dem.D))
	// Effective decomposition bounds (defaults resolved, so spelling the
	// default explicitly still hits).
	mb, mse, mas := cfg.MaxBottleneck, cfg.MaxSideEdges, cfg.MaxAssignmentSet
	if mb <= 0 {
		mb = 3
	}
	if mse <= 0 {
		mse = 20
	}
	if mas <= 0 {
		mas = 20
	}
	writeInt(int64(mb))
	writeInt(int64(mse))
	writeInt(int64(mas))
	if cfg.Bottleneck == nil {
		writeInt(-1)
	} else {
		writeInt(int64(len(cfg.Bottleneck)))
		for _, e := range cfg.Bottleneck {
			writeInt(int64(e))
		}
	}
	return string(h.Sum(nil))
}

// planFor returns the compiled plan for (g, dem, cfg), from cache when the
// structure was compiled before, compiling (and caching) otherwise. The
// second return reports a cache hit. Concurrent calls for the same
// structure are deduplicated: one leader compiles, the rest wait for its
// plan (each saved compile increments the dedup counter). If the leader
// fails — typically a budget or cancellation error scoped to *its*
// controller — waiters retry with their own, so one caller's tight budget
// cannot fail another's compile.
func planFor(ctl *anytime.Ctl, g *Graph, dem Demand, cfg Config) (*core.Plan, bool, error) {
	key := planKey(g, dem, cfg)
	for {
		p, hit, fl, leader := planCache.acquire(key)
		if hit {
			return p, true, nil
		}
		if !leader {
			select {
			case <-fl.done:
			case <-ctl.Context().Done():
				err := ctl.Err()
				if err == nil {
					err = ctl.Context().Err()
				}
				return nil, false, err
			}
			if fl.err == nil {
				return fl.plan, true, nil
			}
			// Leader failed; loop and compile under our own controller.
			continue
		}

		p, err := core.Compile(g, dem, core.Options{
			Bottleneck:       cfg.Bottleneck,
			MaxBottleneck:    cfg.MaxBottleneck,
			MaxSideEdges:     cfg.MaxSideEdges,
			MaxAssignmentSet: cfg.MaxAssignmentSet,
			Parallelism:      cfg.Parallelism,
			Ctl:              ctl,
		})
		fl.plan, fl.err = p, err
		planCache.mu.Lock()
		delete(planCache.inflight, key)
		planCache.mu.Unlock()
		close(fl.done)
		if err != nil {
			return nil, false, err
		}
		planCache.put(key, p)
		return p, false, nil
	}
}
