package flowrel

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/core"
)

// The plan cache memoizes compiled bottleneck plans by the *structure* of
// the instance — topology, capacities, demand and the decomposition
// bounds, but NOT the failure probabilities, which belong to the evaluate
// phase. Repeated Compute/CompilePlan calls on the same structure (a sweep
// that only re-weights links, a what-if loop, a dashboard refresh) skip
// the entire O(2^{α|E|}) side-array construction and pay only the
// microsecond evaluation. Hits return results bit-identical to a cold
// compile, because evaluation is deterministic given the plan.

// defaultPlanCacheCapacity is the default number of compiled plans kept.
// A plan's dominant memory is its two realization arrays
// (8·2^{|E_side|} bytes each, ≤ 8 MiB at the default MaxSideEdges 20).
const defaultPlanCacheCapacity = 64

type planCacheType struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *planEntry
	byKey    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type planEntry struct {
	key  string
	plan *core.Plan
}

var planCache = &planCacheType{
	capacity: defaultPlanCacheCapacity,
	order:    list.New(),
	byKey:    make(map[string]*list.Element),
}

func (c *planCacheType) get(key string) (*core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*planEntry).plan, true
	}
	c.misses++
	return nil, false
}

func (c *planCacheType) put(key string, p *core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&planEntry{key: key, plan: p})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*planEntry).key)
	}
}

// ResetPlanCache drops every cached compiled plan and zeroes the hit and
// miss counters. Use it in benchmarks to measure cold compiles, or to
// release the realization-array memory of plans no longer needed.
func ResetPlanCache() {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	planCache.order.Init()
	planCache.byKey = make(map[string]*list.Element)
	planCache.hits, planCache.misses = 0, 0
}

// SetPlanCacheCapacity bounds the number of compiled plans kept (LRU
// eviction beyond it); n ≤ 0 disables caching entirely. The default is 64.
func SetPlanCacheCapacity(n int) {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	planCache.capacity = n
	for planCache.order.Len() > n {
		oldest := planCache.order.Back()
		planCache.order.Remove(oldest)
		delete(planCache.byKey, oldest.Value.(*planEntry).key)
	}
}

// PlanCacheStats reports the cache's lifetime hit and miss counts and its
// current entry count (since process start or the last ResetPlanCache).
func PlanCacheStats() (hits, misses uint64, entries int) {
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	return planCache.hits, planCache.misses, planCache.order.Len()
}

// planKey is the canonical structural hash: topology (node count plus
// every link's endpoints), capacities, demand, and the Config fields that
// steer the decomposition. Failure probabilities are deliberately
// excluded — they are evaluate-phase inputs.
func planKey(g *Graph, dem Demand, cfg Config) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	h.Write([]byte("flowrel-plan-v1"))
	writeInt(int64(g.NumNodes()))
	writeInt(int64(g.NumEdges()))
	for _, e := range g.Edges() {
		writeInt(int64(e.U))
		writeInt(int64(e.V))
		writeInt(int64(e.Cap))
	}
	writeInt(int64(dem.S))
	writeInt(int64(dem.T))
	writeInt(int64(dem.D))
	// Effective decomposition bounds (defaults resolved, so spelling the
	// default explicitly still hits).
	mb, mse, mas := cfg.MaxBottleneck, cfg.MaxSideEdges, cfg.MaxAssignmentSet
	if mb <= 0 {
		mb = 3
	}
	if mse <= 0 {
		mse = 20
	}
	if mas <= 0 {
		mas = 20
	}
	writeInt(int64(mb))
	writeInt(int64(mse))
	writeInt(int64(mas))
	if cfg.Bottleneck == nil {
		writeInt(-1)
	} else {
		writeInt(int64(len(cfg.Bottleneck)))
		for _, e := range cfg.Bottleneck {
			writeInt(int64(e))
		}
	}
	return string(h.Sum(nil))
}

// planFor returns the compiled plan for (g, dem, cfg), from cache when the
// structure was compiled before, compiling (and caching) otherwise. The
// second return reports a cache hit.
func planFor(ctl *anytime.Ctl, g *Graph, dem Demand, cfg Config) (*core.Plan, bool, error) {
	key := planKey(g, dem, cfg)
	if p, ok := planCache.get(key); ok {
		return p, true, nil
	}
	p, err := core.Compile(g, dem, core.Options{
		Bottleneck:       cfg.Bottleneck,
		MaxBottleneck:    cfg.MaxBottleneck,
		MaxSideEdges:     cfg.MaxSideEdges,
		MaxAssignmentSet: cfg.MaxAssignmentSet,
		Parallelism:      cfg.Parallelism,
		Ctl:              ctl,
	})
	if err != nil {
		return nil, false, err
	}
	planCache.put(key, p)
	return p, false, nil
}
