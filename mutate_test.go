package flowrel

import (
	"math"
	"strings"
	"testing"
)

// mutateTestInstance is a diamond with a distinct bottleneck: two relay
// paths s→a→t and s→b→t feed t, and the single s→t shortcut breaks the
// symmetry so mutations on relay links stay off the cut.
func mutateTestInstance(t testing.TB) (*Graph, Demand) {
	t.Helper()
	b := NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	bb := b.AddNamedNode("b")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, 2, 0.1)
	b.AddEdge(a, tt, 2, 0.1)
	b.AddEdge(s, bb, 1, 0.2)
	b.AddEdge(bb, tt, 1, 0.2)
	b.AddEdge(s, tt, 1, 0.3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, Demand{S: s, T: tt, D: 2}
}

// assertSamePlan compares a mutation successor against a cold compile of
// the same graph on every public observable.
func assertSamePlan(t *testing.T, label string, got, want *Plan) {
	t.Helper()
	gc, wc := got.Cut(), want.Cut()
	if len(gc) != len(wc) {
		t.Fatalf("%s: cut %v vs cold %v", label, gc, wc)
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Fatalf("%s: cut %v vs cold %v", label, gc, wc)
		}
	}
	rg, err := got.Eval(nil)
	if err != nil {
		t.Fatalf("%s: Eval: %v", label, err)
	}
	rw, err := want.Eval(nil)
	if err != nil {
		t.Fatalf("%s: cold Eval: %v", label, err)
	}
	if math.Float64bits(rg) != math.Float64bits(rw) {
		t.Fatalf("%s: Eval %v vs cold %v", label, rg, rw)
	}
}

// coldPlan compiles (g, dem, cfg) against a throwaway cache so the result
// is a genuine cold compile even when the process cache holds the key.
func coldPlan(t *testing.T, g *Graph, dem Demand, cfg Config) *Plan {
	t.Helper()
	old := planCache
	planCache = newPlanCache(1, 0)
	defer func() { planCache = old }()
	p, err := CompilePlan(g, dem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanMutateMatchesCold chains every mutation kind through the public
// Plan.Mutate and checks each successor against a cold CompilePlan of the
// mutated graph.
func TestPlanMutateMatchesCold(t *testing.T) {
	withPlanCacheShards(t, planCacheShards, defaultPlanCacheCapacity)
	g, dem := mutateTestInstance(t)
	p, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Version() != 0 {
		t.Fatalf("cold compile version %d, want 0", p.Version())
	}
	muts := []Mutation{
		{Kind: MutateCapacity, Link: 1, Cap: 3},
		{Kind: MutateAdd, U: 1, V: 3, Cap: 1, PFail: 0.25},
		{Kind: MutateCapacity, Link: 3, Cap: 2},
		{Kind: MutateRemove, Link: 5},
	}
	for i, m := range muts {
		child, err := p.Mutate(m)
		if err != nil {
			t.Fatalf("mutation %d (%v): %v", i, m, err)
		}
		if child.Version() != p.Version()+1 {
			t.Fatalf("mutation %d: version %d after parent %d", i, child.Version(), p.Version())
		}
		if child.Graph().NumEdges() != len(child.BasePFail()) {
			t.Fatalf("mutation %d: graph/base length mismatch", i)
		}
		if child.Demand() != dem {
			t.Fatalf("mutation %d: demand changed to %v", i, child.Demand())
		}
		cold := coldPlan(t, child.Graph(), dem, Config{})
		assertSamePlan(t, m.String(), child, cold)
		p = child
	}
}

// TestPlanMutateCacheDistinctKeys is the cache contract for successors: a
// mutated plan gets the mutated graph's own structural hash — never the
// parent's — and is inserted into the sharded cache under it, so both a
// repeated Mutate and a CompilePlan of the mutated structure hit.
func TestPlanMutateCacheDistinctKeys(t *testing.T) {
	withPlanCacheShards(t, planCacheShards, defaultPlanCacheCapacity)
	g, dem := mutateTestInstance(t)
	p, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := Mutation{Kind: MutateCapacity, Link: 1, Cap: 3}
	child, err := p.Mutate(m)
	if err != nil {
		t.Fatal(err)
	}
	if child.Cached() {
		t.Fatal("first mutation reported a cache hit")
	}
	g2 := child.Graph()
	if StructuralHash(g, dem, Config{}) == StructuralHash(g2, dem, Config{}) {
		t.Fatal("mutated graph aliases the parent's structural hash")
	}

	// The successor is retrievable: same mutation again hits, and a
	// CompilePlan of the mutated structure hits the same entry.
	again, err := p.Mutate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached() {
		t.Fatal("repeated mutation missed the cache")
	}
	compiled, err := CompilePlan(g2, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.Cached() {
		t.Fatal("CompilePlan of the mutated structure missed the cache")
	}
	// The parent's entry survived the child's insertion.
	back, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Cached() {
		t.Fatal("parent structure was evicted by its own successor")
	}
	assertSamePlan(t, "cache hit", again, child)
}

// TestPlanMutatePinnedBottleneck: a pinned bottleneck follows the
// mutation's link renumbering, and removing a pinned link is an error,
// not a silent re-pin.
func TestPlanMutatePinnedBottleneck(t *testing.T) {
	withPlanCacheShards(t, planCacheShards, defaultPlanCacheCapacity)
	g, dem := mutateTestInstance(t)
	base, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Bottleneck: base.Cut()}
	p, err := CompilePlan(g, dem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Remove a non-pinned link: the pin survives renumbering.
	var victim EdgeID = -1
	for id := 0; id < g.NumEdges(); id++ {
		pinned := false
		for _, c := range cfg.Bottleneck {
			if EdgeID(id) == c {
				pinned = true
			}
		}
		if !pinned {
			victim = EdgeID(id)
		}
	}
	if victim >= 0 {
		child, err := p.Mutate(Mutation{Kind: MutateRemove, Link: victim})
		if err == nil {
			cold := coldPlan(t, child.Graph(), dem, child.cfg)
			assertSamePlan(t, "pinned remove", child, cold)
		}
	}
	// Removing a pinned link must fail loudly.
	_, err = p.Mutate(Mutation{Kind: MutateRemove, Link: cfg.Bottleneck[0]})
	if err == nil || !strings.Contains(err.Error(), "pinned bottleneck") {
		t.Fatalf("removing a pinned bottleneck link: err = %v", err)
	}
}

// TestChurnMutateEndToEnd drives peer churn through the delta compiler:
// the node-split transform turns peers into internal links, and
// Leave/SetRelay/Rejoin events become Plan.Mutate calls whose successors
// must match cold compiles of the churned instance.
func TestChurnMutateEndToEnd(t *testing.T) {
	withPlanCacheShards(t, planCacheShards, defaultPlanCacheCapacity)
	b := NewBuilder()
	s := b.AddNamedNode("s")
	r1 := b.AddNamedNode("r1")
	r2 := b.AddNamedNode("r2")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, r1, 2, 0.05)
	b.AddEdge(s, r2, 2, 0.05)
	b.AddEdge(r1, tt, 2, 0.05)
	b.AddEdge(r2, tt, 2, 0.05)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dem := Demand{S: s, T: tt, D: 2}
	inst, err := WithChurn(g, dem, []Peer{
		{Node: r1, PFail: 0.1, Relay: 2},
		{Node: r2, PFail: 0.1, Relay: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompilePlan(inst.G, inst.Demand, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Peer r1 throttles its relay capacity. Link IDs are untouched.
	m, err := inst.SetRelay(r1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := p.Mutate(m)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlan(t, "set-relay", p1, coldPlan(t, p1.Graph(), inst.Demand, Config{}))

	// Peer r2 leaves. Its internal link ID is still valid on p1's graph
	// (the relay change renumbered nothing).
	m, err = inst.Leave(r2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p1.Mutate(m)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlan(t, "leave", p2, coldPlan(t, p2.Graph(), inst.Demand, Config{}))
	rDown, _ := p2.Eval(nil)
	rUp, _ := p1.Eval(nil)
	if rDown >= rUp {
		t.Fatalf("losing a relay peer did not hurt: %v → %v", rUp, rDown)
	}

	// Peer r2 rejoins: an added link addressed purely by node IDs, valid
	// on any descendant graph.
	m, err = inst.Rejoin(r2)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := p2.Mutate(m)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePlan(t, "rejoin", p3, coldPlan(t, p3.Graph(), inst.Demand, Config{}))
	rBack, _ := p3.Eval(nil)
	if math.Abs(rBack-rUp) > 1e-12 {
		t.Fatalf("rejoin did not restore reliability: %v, want ≈ %v", rBack, rUp)
	}

	// Errors: a non-peer node and an out-of-range node.
	if _, err := inst.Leave(s); err == nil {
		t.Fatal("Leave on a non-fallible node succeeded")
	}
	if _, err := inst.SetRelay(NodeID(99), 1); err == nil {
		t.Fatal("SetRelay on an unknown node succeeded")
	}
}
