# The paper's Fig. 2 shape: two diamonds joined by the bridge x→y.
node s
node t
edge s a 1 0.10
edge s b 1 0.10
edge a x 1 0.10
edge b x 1 0.10
edge x y 1 0.05    # e9, the bridge
edge y c 1 0.10
edge y d 1 0.10
edge c t 1 0.10
edge d t 1 0.10
demand s t 1
