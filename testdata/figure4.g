# The paper's Fig. 4 reconstruction: two bottleneck links e1, e2 (cap 2),
# demand 2, assignment set {(2,0), (1,1), (0,2)}.
node s
node t
edge s x1 1 0.10
edge s x1 1 0.15
edge s x2 1 0.10
edge s x2 1 0.15
edge x1 y1 2 0.05  # e1
edge x2 y2 2 0.08  # e2
edge y1 t 2 0.10
edge y2 t 2 0.10
edge y1 y2 1 0.12
demand s t 2
