# Three blocks in series with two 2-link cuts; relcalc -engine chain
# decomposes it automatically.
edge s a 2 0.05
edge a s 2 0.05
edge s m1 1 0.2
edge a m2 1 0.2
edge m1 m2 2 0.05
edge m2 m1 2 0.05
edge m1 e1 1 0.2
edge m2 e2 1 0.2
edge e1 e2 2 0.05
edge e2 e1 2 0.05
edge e1 t 2 0.05
edge e2 t 2 0.05
demand s t 2
