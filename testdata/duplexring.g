# A small full-duplex ring: each connection is a pair of directed links.
duplex a b 1 0.1
duplex b c 1 0.1
duplex c d 1 0.1
duplex d a 1 0.1
demand a c 1
