package flowrel

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"flowrel/internal/stats"
)

// figure2 is the paper's example topology (two parallel source paths, a
// bottleneck link, two parallel sink paths).
func obsTestGraph(t *testing.T) (*Graph, Demand) {
	t.Helper()
	b := NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	bb := b.AddNamedNode("b")
	x := b.AddNamedNode("x")
	y := b.AddNamedNode("y")
	c := b.AddNamedNode("c")
	d := b.AddNamedNode("d")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, 1, 0.1)
	b.AddEdge(s, bb, 1, 0.1)
	b.AddEdge(a, x, 1, 0.1)
	b.AddEdge(bb, x, 1, 0.1)
	b.AddEdge(x, y, 1, 0.05)
	b.AddEdge(y, c, 1, 0.1)
	b.AddEdge(y, d, 1, 0.1)
	b.AddEdge(c, tt, 1, 0.1)
	b.AddEdge(d, tt, 1, 0.1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, Demand{S: s, T: tt, D: 1}
}

func TestCollectStatsReport(t *testing.T) {
	ResetPlanCache()
	g, dem := obsTestGraph(t)

	rep, err := Compute(g, dem, Config{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st == nil {
		t.Fatal("CollectStats set but Report.Stats is nil")
	}
	if st.TotalNanos <= 0 {
		t.Errorf("TotalNanos = %d, want > 0", st.TotalNanos)
	}
	if st.PlanCacheHit {
		t.Error("first solve reported a plan cache hit")
	}
	if len(st.Rungs) == 0 || st.Rungs[0].Rung != "core" || st.Rungs[0].Outcome != "answered" {
		t.Errorf("rungs = %+v, want leading core/answered", st.Rungs)
	}
	if len(st.Phases) == 0 {
		t.Error("no phases recorded for a cold core solve")
	}
	if st.AugmentingPaths <= 0 {
		t.Errorf("AugmentingPaths = %d, want > 0 on a cold compile", st.AugmentingPaths)
	}

	// Second solve: answered from the plan cache, no flow work.
	rep2, err := Compute(g, dem, Config{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Stats.PlanCacheHit {
		t.Error("second solve missed the plan cache")
	}
	if rep2.Stats.AugmentingPaths != 0 {
		t.Errorf("cache hit ran %d augmenting paths, want 0", rep2.Stats.AugmentingPaths)
	}

	// The report must serialize with its documented snake_case keys.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"total_ns"`, `"plan_cache_hit"`, `"budget_curve"`, `"augmenting_paths"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("SolveStats JSON missing %s: %s", key, raw)
		}
	}
}

// TestConfigTracer verifies a caller-supplied tracer sees the same
// events the recorder does, concurrently and without CollectStats.
func TestConfigTracer(t *testing.T) {
	ResetPlanCache()
	g, dem := obsTestGraph(t)

	var mu sync.Mutex
	var rungs []string
	var phases int
	tr := &funcTracer{
		onPhase: func(stats.PhaseEvent) { mu.Lock(); phases++; mu.Unlock() },
		onRung: func(e stats.RungEvent) {
			mu.Lock()
			rungs = append(rungs, e.Rung+"/"+e.Outcome)
			mu.Unlock()
		},
	}
	rep, err := Compute(g, dem, Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats != nil {
		t.Error("Report.Stats set without CollectStats")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rungs) != 1 || rungs[0] != "core/answered" {
		t.Errorf("rungs = %v, want [core/answered]", rungs)
	}
	if phases == 0 {
		t.Error("tracer saw no phase events")
	}
}

type funcTracer struct {
	onPhase func(stats.PhaseEvent)
	onRung  func(stats.RungEvent)
}

func (f *funcTracer) OnPhase(e stats.PhaseEvent) { f.onPhase(e) }
func (f *funcTracer) OnConfig(stats.ConfigEvent) {}
func (f *funcTracer) OnRung(e stats.RungEvent)   { f.onRung(e) }
