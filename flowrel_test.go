package flowrel

import (
	"math"
	"strings"
	"testing"

	"flowrel/internal/testutil"
)

func figure2Demand() (*Graph, Demand) {
	o := Figure2Overlay()
	return o.G, o.Demand(o.Peers[len(o.Peers)-1])
}

func TestAllEnginesAgree(t *testing.T) {
	g, dem := figure2Demand()
	exact, err := Exact(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Float64()
	for _, eng := range []Engine{EngineAuto, EngineCore, EngineNaive, EngineNaiveGray, EngineFactoring} {
		rep, err := Compute(g, dem, Config{Engine: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if math.Abs(rep.Reliability-want) > 1e-9 {
			t.Fatalf("%v: %.12f, want %.12f", eng, rep.Reliability, want)
		}
	}
	r, err := Reliability(g, dem)
	if err != nil || math.Abs(r-want) > 1e-9 {
		t.Fatalf("Reliability = %g, %v; want %g", r, err, want)
	}
}

func TestAutoUsesCoreOnBottleneckGraph(t *testing.T) {
	g, dem := figure2Demand()
	rep, err := Compute(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != EngineCore {
		t.Fatalf("auto picked %v, want core", rep.Engine)
	}
	if rep.K != 1 || !testutil.AlmostEqual(rep.Alpha, 4.0/9.0, 0) {
		t.Fatalf("K=%d alpha=%g", rep.K, rep.Alpha)
	}
}

func TestAutoFallsBackToFactoring(t *testing.T) {
	// K5-ish dense digraph: min cut between 0 and 4 exceeds MaxBottleneck 1.
	b := NewBuilder()
	n := b.AddNodes(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				b.AddEdge(n+NodeID(i), n+NodeID(j), 1, 0.2)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dem := Demand{S: 0, T: 4, D: 1}
	rep, err := Compute(g, dem, Config{MaxBottleneck: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != EngineFactoring {
		t.Fatalf("auto picked %v, want factoring", rep.Engine)
	}
	naive, err := Compute(g, dem, Config{Engine: EngineNaive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Reliability-naive.Reliability) > 1e-9 {
		t.Fatalf("factoring %.12f vs naive %.12f", rep.Reliability, naive.Reliability)
	}
}

func TestEngineChain(t *testing.T) {
	o, _, err := ChainOverlay(3, 2, 1, 2, 2, 2, 0.15, 4)
	if err != nil {
		t.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	rep, err := Compute(o.G, dem, Config{Engine: EngineChain})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != EngineChain {
		t.Fatalf("engine = %v", rep.Engine)
	}
	naive, err := Compute(o.G, dem, Config{Engine: EngineNaive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Reliability-naive.Reliability) > 1e-9 {
		t.Fatalf("chain %.12f vs naive %.12f", rep.Reliability, naive.Reliability)
	}
}

// TestAutoPrefersChainOverFactoring: when the single cut leaves a side too
// large but a cut sequence decomposes the graph, auto must pick the chain.
func TestAutoPrefersChainOverFactoring(t *testing.T) {
	o, _, err := ChainOverlay(5, 3, 2, 2, 2, 2, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	rep, err := Compute(o.G, dem, Config{MaxSideEdges: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != EngineChain {
		t.Fatalf("auto picked %v, want chain (sides exceed 10 links for any single cut)", rep.Engine)
	}
	fact, err := Compute(o.G, dem, Config{Engine: EngineFactoring})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Reliability-fact.Reliability) > 1e-9 {
		t.Fatalf("chain %.12f vs factoring %.12f", rep.Reliability, fact.Reliability)
	}
}

func TestComputeWithReduce(t *testing.T) {
	o, err := TreeOverlay(2, 3, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	plain, err := Compute(o.G, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := Compute(o.G, dem, Config{Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Reliability-reduced.Reliability) > 1e-12 {
		t.Fatalf("Reduce changed the answer: %g vs %g", plain.Reliability, reduced.Reliability)
	}
	// Explicit bottleneck + Reduce must be rejected (IDs would dangle).
	if _, err := Compute(o.G, dem, Config{Reduce: true, Bottleneck: []EdgeID{0}}); err == nil {
		t.Fatal("Reduce with explicit Bottleneck accepted")
	}
}

func TestEngineString(t *testing.T) {
	names := map[Engine]string{
		EngineAuto: "auto", EngineCore: "core", EngineNaive: "naive",
		EngineNaiveGray: "naive-gray", EngineFactoring: "factoring",
		EngineChain: "chain", Engine(42): "engine(42)",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
	if _, err := Compute(nil, Demand{}, Config{Engine: Engine(42)}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestFacadeMonteCarloAndBounds(t *testing.T) {
	g, dem := figure2Demand()
	want, err := Reliability(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	est, err := MonteCarlo(g, dem, 50000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Reliability-want) > 5*est.StdErr+1e-9 {
		t.Fatalf("MC %g vs exact %g", est.Reliability, want)
	}
	bd, err := Bounds(g, dem, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Lower > want+1e-9 || want > bd.Upper+1e-9 {
		t.Fatalf("bounds [%g, %g] miss exact %g", bd.Lower, bd.Upper, want)
	}
}

func TestFacadeBottleneckHelpers(t *testing.T) {
	g, dem := figure2Demand()
	bt, err := FindBottleneck(g, dem.S, dem.T, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bt.K() != 1 {
		t.Fatalf("K = %d", bt.K())
	}
	bt2, err := SplitBottleneck(g, dem.S, dem.T, bt.Cut)
	if err != nil {
		t.Fatal(err)
	}
	if bt2.Alpha != bt.Alpha {
		t.Fatal("split mismatch")
	}
	cuts := MinCuts(g, dem.S, dem.T, 2)
	if len(cuts) == 0 {
		t.Fatal("no cuts enumerated")
	}
}

func TestFacadeOverlaysAndPaths(t *testing.T) {
	o, err := MultiTreeOverlay(6, 2, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dem := o.Demand(o.Peers[3])
	paths, err := DeliveryPaths(o.G, dem)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2 sub-streams", len(paths))
	}
	alive := make([]bool, o.G.NumEdges())
	for i := range alive {
		alive[i] = true
	}
	paths2, err := DeliveryPathsAlive(o.G, dem, alive)
	if err != nil || len(paths2) != 2 {
		t.Fatalf("alive paths = %d, %v", len(paths2), err)
	}

	tree, err := TreeOverlay(2, 2, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Peers) != 6 {
		t.Fatalf("tree peers = %d", len(tree.Peers))
	}
	mesh, err := MeshOverlay(8, 2, 2, 2, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mesh.Peers) != 8 {
		t.Fatalf("mesh peers = %d", len(mesh.Peers))
	}
	cl, err := ClusteredOverlay(3, 4, 2, 2, 2, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Bottleneck) != 2 {
		t.Fatalf("clustered bottleneck = %v", cl.Bottleneck)
	}
}

func TestFacadeSimulateAgreesWithExact(t *testing.T) {
	g, dem := figure2Demand()
	want, err := Reliability(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(g, dem, SimConfig{Sessions: 50000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.DeliveryRate-want) > 5*rep.StdErr+1e-9 {
		t.Fatalf("sim %g vs exact %g", rep.DeliveryRate, want)
	}
}

func TestFacadeParseText(t *testing.T) {
	f, err := ParseTextString("edge s t 1 0.25\ndemand s t 1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reliability(f.Graph, *f.Demand)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("R = %g, want 0.75", r)
	}
	if _, err := ParseText(strings.NewReader("frob")); err == nil {
		t.Fatal("bad input accepted")
	}
}

// TestFigure4OverlayThroughFacade exercises the Fig. 4 reconstruction end
// to end through the public API.
func TestFigure4OverlayThroughFacade(t *testing.T) {
	o := Figure4Overlay()
	dem := o.Demand(o.Peers[0])
	rep, err := Compute(o.G, dem, Config{Engine: EngineCore, Bottleneck: o.Bottleneck})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Assignments) != 3 || rep.K != 2 {
		t.Fatalf("K=%d |D|=%d", rep.K, len(rep.Assignments))
	}
	naive, err := Compute(o.G, dem, Config{Engine: EngineNaive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Reliability-naive.Reliability) > 1e-12 {
		t.Fatalf("core %.15f vs naive %.15f", rep.Reliability, naive.Reliability)
	}
}
