package flowrel

import (
	"expvar"
	"sync"
	"time"

	"flowrel/internal/stats"
)

// Tracer receives solver progress events: phase completions (side-array
// builds, chain segments, cut searches), configuration-budget consumption
// ticks, and degradation-ladder rung transitions. Implementations must be
// safe for concurrent use — enumeration workers charge budgets in
// parallel — and fast: hooks run on the solver's goroutines. A nil Tracer
// costs one branch per hook site.
type Tracer = stats.Tracer

// PhaseEvent reports one completed solver phase (see Tracer).
type PhaseEvent = stats.PhaseEvent

// ConfigEvent reports cumulative work at a budget-charge point (see Tracer).
type ConfigEvent = stats.ConfigEvent

// RungEvent reports a degradation-ladder rung transition (see Tracer).
type RungEvent = stats.RungEvent

// StatsReport is a point-in-time snapshot of the process-wide solver
// metrics registry (counters, histograms, timers). Snapshots are cheap
// and diffable: s.Delta(prev) isolates one window's activity.
type StatsReport = stats.Snapshot

// StatsSnapshot captures the process-wide solver metrics: compile and
// evaluation counts, per-layer max-flow and augmenting-path totals, plan
// cache traffic, and latency histograms. Counters accumulate since
// process start; diff two snapshots to scope a window.
func StatsSnapshot() StatsReport {
	return stats.Default.Snapshot()
}

// SetStatsEnabled turns the process-wide metrics registry on (the
// default) or off. Disabled, every metric update is a single atomic load
// and branch — the configuration benchmarked by
// BenchmarkNilTracerOverhead's baseline.
func SetStatsEnabled(on bool) {
	stats.Default.SetEnabled(on)
}

// StatsEnabled reports whether the process-wide metrics registry is
// recording.
func StatsEnabled() bool {
	return stats.Default.Enabled()
}

var publishExpvarOnce sync.Once

// PublishExpvar registers the solver metrics registry and the plan-cache
// counters with the standard expvar page, under "flowrel.stats" and
// "flowrel.plancache". Safe to call more than once; only the first call
// registers. Serving /debug/vars (e.g. relcalc -serve) then exposes them
// alongside the runtime's memstats.
func PublishExpvar() {
	publishExpvarOnce.Do(func() {
		expvar.Publish("flowrel.stats", expvar.Func(func() any {
			return stats.Default.Snapshot()
		}))
		expvar.Publish("flowrel.plancache", expvar.Func(func() any {
			return PlanCacheSnapshot()
		}))
	})
}

// SolveStats is the per-call observability report attached to
// Report.Stats when Config.CollectStats is set. All durations are
// nanoseconds for stable JSON.
type SolveStats struct {
	// TotalNanos is the wall time of the whole ComputeCtx call.
	TotalNanos int64 `json:"total_ns"`
	// Configs and MaxFlowCalls mirror the Report counters.
	Configs      uint64 `json:"configs"`
	MaxFlowCalls int64  `json:"max_flow_calls"`
	// AugmentingPaths counts augmenting paths found across every max-flow
	// invocation of this call (zero on a plan-cache hit: evaluation runs
	// no flows).
	AugmentingPaths int64 `json:"augmenting_paths"`
	// PlanCacheHit reports whether the core engine answered from a cached
	// compiled plan.
	PlanCacheHit bool `json:"plan_cache_hit"`
	// PrunedCapacity / PrunedClosure count (assignment, configuration)
	// pairs the frontier side engine decided without a max-flow call —
	// capacity bound (unrealizable) and superset closure (realized) — and
	// FrontierMaxFlowCalls the solves it actually paid. All zero on a
	// plan-cache hit or when a dense side engine ran.
	PrunedCapacity       int64 `json:"pruned_capacity"`
	PrunedClosure        int64 `json:"pruned_closure"`
	FrontierMaxFlowCalls int64 `json:"frontier_max_flow_calls"`
	// KernelTerms / KernelSegments / KernelLanes describe the compiled
	// evaluate-phase kernel of the answering plan (core engine only; all
	// zero when the instance stays on the scalar evaluator): flattened
	// inclusion–exclusion terms, realized-mask segments across both
	// sides, and the batch block width. Reported on cache hits too — the
	// cached plan's tables did this call's aggregation.
	KernelTerms    int64 `json:"kernel_terms"`
	KernelSegments int64 `json:"kernel_segments"`
	KernelLanes    int64 `json:"kernel_lanes"`
	// Phases lists completed solver phases in completion order.
	Phases []PhaseStat `json:"phases"`
	// Rungs lists degradation-ladder transitions (EngineAuto only).
	Rungs []RungStat `json:"rungs"`
	// BudgetCurve is the cumulative work-over-time curve sampled at
	// budget-charge points, bounded to a fixed number of points.
	BudgetCurve []CurveStat `json:"budget_curve"`
}

// PhaseStat is one completed solver phase.
type PhaseStat struct {
	Engine        string `json:"engine"`
	Phase         string `json:"phase"`
	DurationNanos int64  `json:"duration_ns"`
	Configs       uint64 `json:"configs"`
	MaxFlowCalls  int64  `json:"max_flow_calls"`
}

// RungStat is one degradation-ladder rung transition.
type RungStat struct {
	Rung          string `json:"rung"`
	Outcome       string `json:"outcome"`
	Reason        string `json:"reason,omitempty"`
	DurationNanos int64  `json:"duration_ns"`
}

// CurveStat is one point of the budget-consumption curve: cumulative
// work observed at a charge point.
type CurveStat struct {
	ElapsedNanos int64  `json:"elapsed_ns"`
	Configs      uint64 `json:"configs"`
	MaxFlowCalls int64  `json:"max_flow_calls"`
}

// solveStatsFrom assembles the public SolveStats from a recorder's
// accumulated events plus the per-call report fields.
func solveStatsFrom(rec *stats.Recorder, elapsed time.Duration, rep Report) *SolveStats {
	s := &SolveStats{
		TotalNanos:           elapsed.Nanoseconds(),
		Configs:              rep.Configs,
		MaxFlowCalls:         rep.MaxFlowCalls,
		AugmentingPaths:      rep.augmentingPaths,
		PlanCacheHit:         rep.planCacheHit,
		PrunedCapacity:       rep.prunedCapacity,
		PrunedClosure:        rep.prunedClosure,
		FrontierMaxFlowCalls: rep.frontierMaxFlowCalls,
		KernelTerms:          rep.kernelTerms,
		KernelSegments:       rep.kernelSegments,
		KernelLanes:          rep.kernelLanes,
		Phases:               []PhaseStat{},
		Rungs:                []RungStat{},
		BudgetCurve:          []CurveStat{},
	}
	for _, p := range rec.Phases() {
		s.Phases = append(s.Phases, PhaseStat{
			Engine:        p.Engine,
			Phase:         p.Phase,
			DurationNanos: p.Duration.Nanoseconds(),
			Configs:       p.Configs,
			MaxFlowCalls:  p.MaxFlowCalls,
		})
	}
	for _, r := range rec.Rungs() {
		s.Rungs = append(s.Rungs, RungStat{
			Rung:          r.Rung,
			Outcome:       r.Outcome,
			Reason:        r.Reason,
			DurationNanos: r.Duration.Nanoseconds(),
		})
	}
	for _, c := range rec.Curve() {
		s.BudgetCurve = append(s.BudgetCurve, CurveStat{
			ElapsedNanos: c.Elapsed.Nanoseconds(),
			Configs:      c.Configs,
			MaxFlowCalls: c.MaxFlowCalls,
		})
	}
	return s
}
