package flowrel

import (
	"fmt"
	"math/big"

	"flowrel/internal/assign"
	"flowrel/internal/chain"
	"flowrel/internal/core"
	"flowrel/internal/mincut"
	"flowrel/internal/reduce"
	"flowrel/internal/reliability"
)

// Assignment is one distribution of the d sub-streams over the bottleneck
// links (§III-B of the paper).
type Assignment = assign.Assignment

// Engine selects a reliability algorithm.
type Engine int

const (
	// EngineAuto uses the bottleneck decomposition when a small balanced
	// minimal cut exists, then tries the chain decomposition (a sequence
	// of cuts), and falls back to the factoring solver.
	EngineAuto Engine = iota
	// EngineCore is the paper's bottleneck-decomposition algorithm:
	// O(2^{α|E|}·|V|·|E|) with a constant-size bottleneck link set.
	EngineCore
	// EngineNaive enumerates all 2^{|E|} failure configurations (the
	// paper's baseline, Fig. 1).
	EngineNaive
	// EngineNaiveGray is EngineNaive walking the configurations in
	// Gray-code order with incremental max-flow maintenance.
	EngineNaiveGray
	// EngineFactoring conditions on one link at a time with two-sided
	// max-flow pruning (the classical exact method).
	EngineFactoring
	// EngineChain decomposes along a sequence of disjoint minimal cuts
	// (the generalization of EngineCore to delivery chains); cuts are
	// discovered automatically.
	EngineChain
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineCore:
		return "core"
	case EngineNaive:
		return "naive"
	case EngineNaiveGray:
		return "naive-gray"
	case EngineFactoring:
		return "factoring"
	case EngineChain:
		return "chain"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Config tunes an exact reliability computation.
type Config struct {
	Engine Engine
	// Bottleneck optionally fixes the bottleneck link set for EngineCore;
	// nil lets the solver search for the most balanced minimal cut.
	Bottleneck []EdgeID
	// MaxBottleneck bounds the bottleneck search (default 3).
	MaxBottleneck int
	// MaxSideEdges bounds the enumerated component size for EngineCore
	// (default 20; time and memory grow as 2^{MaxSideEdges}).
	MaxSideEdges int
	// MaxAssignmentSet bounds the assignment family size |𝒟| for
	// EngineCore (default 20).
	MaxAssignmentSet int
	// Parallelism is the worker count for the enumeration engines
	// (≤ 0 = GOMAXPROCS).
	Parallelism int
	// Reduce applies the exact reliability-preserving reductions before
	// solving. The reliability is unchanged; any link IDs in the Report
	// (Cut, Assignments' indices) then refer to the reduced instance, so
	// leave this off when you need them to address the original graph.
	Reduce bool
}

// Report is the result of an exact computation.
type Report struct {
	Reliability float64
	// Engine is the algorithm that actually ran (relevant for EngineAuto).
	Engine Engine
	// Cut, K, Alpha and Assignments describe the decomposition when
	// EngineCore ran.
	Cut         []EdgeID
	K           int
	Alpha       float64
	Assignments []Assignment
	// MaxFlowCalls counts max-flow solver invocations.
	MaxFlowCalls int64
	// Configs counts the failure configurations (or factoring branch
	// nodes) examined.
	Configs uint64
}

// Reliability computes the exact reliability of g with respect to dem with
// automatic engine selection. Use Compute for control and work statistics.
func Reliability(g *Graph, dem Demand) (float64, error) {
	rep, err := Compute(g, dem, Config{})
	return rep.Reliability, err
}

// Compute computes the exact reliability with the configured engine.
func Compute(g *Graph, dem Demand, cfg Config) (Report, error) {
	if cfg.Reduce {
		red, err := reduce.Apply(g, dem)
		if err != nil {
			return Report{}, err
		}
		g = red.G
		dem = red.Demand
		cfg.Reduce = false
		if cfg.Bottleneck != nil {
			return Report{}, fmt.Errorf("flowrel: Reduce renumbers links; an explicit Bottleneck cannot be combined with it")
		}
	}
	switch cfg.Engine {
	case EngineAuto:
		rep, err := computeCore(g, dem, cfg)
		if err == nil {
			return rep, nil
		}
		// A single balanced cut may not exist or may leave a side too big;
		// a *sequence* of cuts can still decompose the graph.
		if rep2, err2 := computeChain(g, dem, cfg); err2 == nil {
			return rep2, nil
		}
		rep3, err3 := computeFactoring(g, dem, cfg)
		if err3 != nil {
			return Report{}, fmt.Errorf("flowrel: core engine failed (%v); factoring failed too: %w", err, err3)
		}
		return rep3, nil
	case EngineCore:
		return computeCore(g, dem, cfg)
	case EngineChain:
		return computeChain(g, dem, cfg)
	case EngineNaive, EngineNaiveGray:
		res, err := reliability.Naive(g, dem, reliability.Options{
			Parallelism: cfg.Parallelism,
			GrayCode:    cfg.Engine == EngineNaiveGray,
		})
		if err != nil {
			return Report{}, err
		}
		return Report{
			Reliability:  res.Reliability,
			Engine:       cfg.Engine,
			MaxFlowCalls: res.Stats.MaxFlowCalls,
			Configs:      res.Stats.Configs,
		}, nil
	case EngineFactoring:
		return computeFactoring(g, dem, cfg)
	}
	return Report{}, fmt.Errorf("flowrel: unknown engine %v", cfg.Engine)
}

func computeCore(g *Graph, dem Demand, cfg Config) (Report, error) {
	res, err := core.Reliability(g, dem, core.Options{
		Bottleneck:       cfg.Bottleneck,
		MaxBottleneck:    cfg.MaxBottleneck,
		MaxSideEdges:     cfg.MaxSideEdges,
		MaxAssignmentSet: cfg.MaxAssignmentSet,
		Parallelism:      cfg.Parallelism,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Reliability:  res.Reliability,
		Engine:       EngineCore,
		Cut:          res.Cut,
		K:            res.K,
		Alpha:        res.Alpha,
		Assignments:  res.Assignments,
		MaxFlowCalls: res.Stats.MaxFlowCalls,
		Configs:      res.Stats.SideConfigs[0] + res.Stats.SideConfigs[1],
	}, nil
}

func computeChain(g *Graph, dem Demand, cfg Config) (Report, error) {
	maxCut := cfg.MaxBottleneck
	if maxCut <= 0 {
		maxCut = 3
	}
	cuts, err := chain.Find(g, dem, maxCut, 0)
	if err != nil {
		return Report{}, err
	}
	res, err := chain.Solve(g, dem, cuts, chain.Options{
		MaxSegmentEdges:  cfg.MaxSideEdges,
		MaxAssignmentSet: cfg.MaxAssignmentSet,
		Parallelism:      cfg.Parallelism,
	})
	if err != nil {
		return Report{}, err
	}
	var flat []EdgeID
	for _, cut := range res.Cuts {
		flat = append(flat, cut...)
	}
	return Report{
		Reliability:  res.Reliability,
		Engine:       EngineChain,
		Cut:          flat,
		K:            len(flat),
		MaxFlowCalls: res.MaxFlowCalls,
	}, nil
}

func computeFactoring(g *Graph, dem Demand, cfg Config) (Report, error) {
	res, err := reliability.Factoring(g, dem, reliability.Options{Parallelism: cfg.Parallelism})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Reliability:  res.Reliability,
		Engine:       EngineFactoring,
		MaxFlowCalls: res.Stats.MaxFlowCalls,
		Configs:      res.Stats.Configs,
	}, nil
}

// Exact computes the reliability in exact rational arithmetic by full
// enumeration — the validation oracle. Exponential in |E| and sequential;
// use only on small graphs.
func Exact(g *Graph, dem Demand) (*big.Rat, error) {
	return reliability.NaiveExact(g, dem)
}

// Estimate is a Monte Carlo reliability estimate with a standard error.
type Estimate = reliability.Estimate

// MonteCarlo estimates the reliability from `samples` random failure
// configurations; deterministic per seed regardless of parallelism. It
// scales to graphs far beyond the exact engines.
func MonteCarlo(g *Graph, dem Demand, samples int, seed int64) (Estimate, error) {
	return reliability.MonteCarlo(g, dem, samples, seed, reliability.Options{})
}

// Bound is a guaranteed reliability interval.
type Bound = reliability.Bound

// Bounds computes guaranteed lower and upper reliability bounds in
// polynomial time (given the minimal-cut enumeration budget maxCutSize).
func Bounds(g *Graph, dem Demand, maxCutSize int) (Bound, error) {
	return reliability.Bounds(g, dem, maxCutSize)
}

// Bottleneck is a validated α-bottleneck split: a minimal s–t cut whose
// removal leaves exactly two components.
type Bottleneck = mincut.Bottleneck

// FindBottleneck searches for the α-bottleneck link set with the most
// balanced split among minimal s–t cuts of at most maxSize links.
func FindBottleneck(g *Graph, s, t NodeID, maxSize int) (*Bottleneck, error) {
	return mincut.Find(g, s, t, maxSize)
}

// SplitBottleneck validates an explicit bottleneck link set.
func SplitBottleneck(g *Graph, s, t NodeID, cut []EdgeID) (*Bottleneck, error) {
	return mincut.Split(g, s, t, cut)
}

// MinCuts enumerates every minimal s–t cut with at most maxSize links.
func MinCuts(g *Graph, s, t NodeID, maxSize int) [][]EdgeID {
	return mincut.EnumerateMinimal(g, s, t, maxSize)
}
