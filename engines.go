package flowrel

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"flowrel/internal/anytime"
	"flowrel/internal/assign"
	"flowrel/internal/chain"
	"flowrel/internal/mincut"
	"flowrel/internal/reduce"
	"flowrel/internal/reliability"
	"flowrel/internal/stats"
)

// Assignment is one distribution of the d sub-streams over the bottleneck
// links (§III-B of the paper).
type Assignment = assign.Assignment

// Engine selects a reliability algorithm.
type Engine int

const (
	// EngineAuto uses the bottleneck decomposition when a small balanced
	// minimal cut exists, then tries the chain decomposition (a sequence
	// of cuts), and falls back to the factoring solver.
	EngineAuto Engine = iota
	// EngineCore is the paper's bottleneck-decomposition algorithm:
	// O(2^{α|E|}·|V|·|E|) with a constant-size bottleneck link set.
	EngineCore
	// EngineNaive enumerates all 2^{|E|} failure configurations (the
	// paper's baseline, Fig. 1).
	EngineNaive
	// EngineNaiveGray is EngineNaive walking the configurations in
	// Gray-code order with incremental max-flow maintenance.
	EngineNaiveGray
	// EngineFactoring conditions on one link at a time with two-sided
	// max-flow pruning (the classical exact method).
	EngineFactoring
	// EngineChain decomposes along a sequence of disjoint minimal cuts
	// (the generalization of EngineCore to delivery chains); cuts are
	// discovered automatically.
	EngineChain
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineCore:
		return "core"
	case EngineNaive:
		return "naive"
	case EngineNaiveGray:
		return "naive-gray"
	case EngineFactoring:
		return "factoring"
	case EngineChain:
		return "chain"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Config tunes an exact reliability computation.
type Config struct {
	Engine Engine
	// Bottleneck optionally fixes the bottleneck link set for EngineCore;
	// nil lets the solver search for the most balanced minimal cut.
	Bottleneck []EdgeID
	// MaxBottleneck bounds the bottleneck search (default 3).
	MaxBottleneck int
	// MaxSideEdges bounds the enumerated component size for EngineCore
	// (default 20; time and memory grow as 2^{MaxSideEdges}).
	MaxSideEdges int
	// MaxAssignmentSet bounds the assignment family size |𝒟| for
	// EngineCore (default 20).
	MaxAssignmentSet int
	// Parallelism is the worker count for the enumeration engines
	// (≤ 0 = GOMAXPROCS).
	Parallelism int
	// Reduce applies the exact reliability-preserving reductions before
	// solving. The reliability is unchanged; any link IDs in the Report
	// (Cut, Assignments' indices) then refer to the reduced instance, so
	// leave this off when you need them to address the original graph.
	Reduce bool
	// Budget bounds the work of a ComputeCtx call (configurations,
	// max-flow calls, wall clock); the zero value is unlimited. Plain
	// Compute ignores it only in the sense that it passes no context —
	// the budget itself is honoured there too.
	Budget Budget
	// Tracer, when non-nil, receives phase, budget-consumption and
	// ladder-rung events as the solver runs. Hooks execute on solver
	// goroutines; keep them fast and concurrency-safe.
	Tracer Tracer
	// CollectStats attaches a SolveStats observability report to
	// Report.Stats: wall time, phase timings, ladder transitions and the
	// budget-consumption curve. Collection costs one extra tracer
	// dispatch per event; leave it off on latency-critical paths.
	CollectStats bool
}

// Validate rejects nonsensical configurations with actionable messages
// before any work starts. The graph may be nil to skip the
// size-dependent checks; Compute and ComputeCtx validate automatically.
func (cfg Config) Validate(g *Graph) error {
	if cfg.MaxBottleneck < 0 {
		return fmt.Errorf("flowrel: MaxBottleneck %d is negative; use 0 for the default (3) or a positive cut-size bound", cfg.MaxBottleneck)
	}
	if cfg.MaxSideEdges < 0 {
		return fmt.Errorf("flowrel: MaxSideEdges %d is negative; use 0 for the default (20) or a positive component-size bound", cfg.MaxSideEdges)
	}
	if cfg.MaxAssignmentSet < 0 {
		return fmt.Errorf("flowrel: MaxAssignmentSet %d is negative; use 0 for the default (20) or a positive assignment-family bound", cfg.MaxAssignmentSet)
	}
	if g != nil && cfg.MaxBottleneck > g.NumEdges() {
		return fmt.Errorf("flowrel: MaxBottleneck %d exceeds the graph's %d links; a minimal cut never has more links than the graph", cfg.MaxBottleneck, g.NumEdges())
	}
	if err := cfg.Budget.Validate(); err != nil {
		return err
	}
	return nil
}

// Report is the result of an exact computation.
type Report struct {
	Reliability float64
	// Engine is the algorithm that actually ran (relevant for EngineAuto).
	Engine Engine
	// Cut, K, Alpha and Assignments describe the decomposition when
	// EngineCore ran.
	Cut         []EdgeID
	K           int
	Alpha       float64
	Assignments []Assignment
	// MaxFlowCalls counts max-flow solver invocations.
	MaxFlowCalls int64
	// Configs counts the failure configurations (or factoring branch
	// nodes) examined.
	Configs uint64
	// Partial reports an interrupted anytime run (ComputeCtx with a
	// cancelled context or an exhausted Budget). [Lo, Hi] is then a
	// certified interval containing the true reliability and Reliability
	// a point estimate inside it; complete runs have Lo == Hi ==
	// Reliability and Partial false.
	Partial bool
	Lo, Hi  float64
	// Rung names the degradation-ladder rung that produced the answer
	// when EngineAuto ran under ComputeCtx: "core", "chain", "factoring",
	// "most-probable-states" or "importance-sampling".
	Rung string
	// Reason explains an interruption and why earlier ladder rungs did
	// not answer.
	Reason string
	// Stats is the per-call observability report; nil unless
	// Config.CollectStats was set.
	Stats *SolveStats

	// planCacheHit, augmentingPaths and the pruning counters feed
	// SolveStats; kept unexported so the public Report surface stays the
	// documented fields above.
	planCacheHit    bool
	augmentingPaths int64
	// prunedCapacity / prunedClosure / frontierMaxFlowCalls describe the
	// frontier side engine's work split: pairs discarded by the capacity
	// bound, pairs closed from a realized submask, and the max-flow calls
	// actually paid (all zero on a cache hit or a non-frontier engine).
	prunedCapacity       int64
	prunedClosure        int64
	frontierMaxFlowCalls int64
	// kernelTerms / kernelSegments / kernelLanes describe the compiled
	// evaluate-phase kernel of the plan that answered (all zero when the
	// instance is outside the kernel guards, or a non-core engine ran):
	// the flattened inclusion–exclusion table size, the realized-mask
	// segments of the two sides, and the batch block width.
	kernelTerms    int64
	kernelSegments int64
	kernelLanes    int64
}

// Reliability computes the exact reliability of g with respect to dem with
// automatic engine selection. Use Compute for control and work statistics.
func Reliability(g *Graph, dem Demand) (float64, error) {
	rep, err := Compute(g, dem, Config{})
	return rep.Reliability, err
}

// Compute computes the exact reliability with the configured engine. It
// honours cfg.Budget but passes no context; use ComputeCtx for
// cancellation.
func Compute(g *Graph, dem Demand, cfg Config) (Report, error) {
	return ComputeCtx(context.Background(), g, dem, cfg)
}

// ComputeCtx is the anytime form of Compute: the computation stops
// cooperatively when ctx is cancelled, cfg.Budget.SoftDeadline passes, or
// a configuration/max-flow-call budget is exhausted. The engines that can
// certify a partial answer (factoring, naive enumeration) then return a
// Report with Partial set and a guaranteed interval [Lo, Hi] containing
// the true reliability; the structural decompositions (core, chain)
// return an error wrapping ErrInterrupted instead, because a half-built
// side array certifies nothing.
//
// With EngineAuto the call never wastes an interruption: it walks a
// degradation ladder core → chain → factoring → most-probable-states
// bounds → importance-sampled Monte Carlo, giving each rung a slice of
// the remaining budget, and reports the best certified interval plus the
// rung that produced the final answer (Report.Rung) and why earlier rungs
// did not (Report.Reason).
func ComputeCtx(ctx context.Context, g *Graph, dem Demand, cfg Config) (Report, error) {
	if err := cfg.Validate(g); err != nil {
		return Report{}, err
	}
	if cfg.Reduce {
		red, err := reduce.Apply(g, dem)
		if err != nil {
			return Report{}, err
		}
		g = red.G
		dem = red.Demand
		cfg.Reduce = false
		if cfg.Bottleneck != nil {
			return Report{}, fmt.Errorf("flowrel: Reduce renumbers links; an explicit Bottleneck cannot be combined with it")
		}
	}
	ctl := anytime.New(ctx, cfg.Budget)

	// Install the tracer on the controller — the one object threaded
	// through every engine — teeing in a recorder when the caller asked
	// for a SolveStats report.
	var rec *stats.Recorder
	tr := cfg.Tracer
	if cfg.CollectStats {
		rec = stats.NewRecorder()
		tr = stats.Tee(tr, rec)
	}
	ctl.SetTracer(tr)
	start := time.Now()

	rep, err := computeWith(g, dem, cfg, ctl)
	if err != nil {
		return Report{}, err
	}
	if rec != nil {
		rep.Stats = solveStatsFrom(rec, time.Since(start), rep)
	}
	return rep, nil
}

// computeWith dispatches to the configured engine; ctl carries the
// budget, cancellation and tracer.
func computeWith(g *Graph, dem Demand, cfg Config, ctl *anytime.Ctl) (Report, error) {
	switch cfg.Engine {
	case EngineAuto:
		return computeLadder(g, dem, cfg, ctl)
	case EngineCore:
		return computeCore(g, dem, cfg, ctl)
	case EngineChain:
		return computeChain(g, dem, cfg, ctl)
	case EngineNaive, EngineNaiveGray:
		res, err := reliability.Naive(g, dem, reliability.Options{
			Parallelism: cfg.Parallelism,
			GrayCode:    cfg.Engine == EngineNaiveGray,
			Ctl:         ctl,
		})
		if err != nil {
			return Report{}, err
		}
		return Report{
			Reliability:  res.Reliability,
			Engine:       cfg.Engine,
			MaxFlowCalls: res.Stats.MaxFlowCalls,
			Configs:      res.Stats.Configs,
			Partial:      res.Partial,
			Lo:           res.Lo,
			Hi:           res.Hi,
			Reason:       res.Reason,
		}, nil
	case EngineFactoring:
		return computeFactoring(g, dem, cfg, ctl)
	}
	return Report{}, fmt.Errorf("flowrel: unknown engine %v", cfg.Engine)
}

// computeCore answers through the plan cache: a cache hit skips the entire
// side-array construction (zero max-flow calls) and only re-aggregates the
// probabilities, so repeated Compute calls on the same structure cost
// microseconds. A miss compiles, caches, and reports the compile work.
func computeCore(g *Graph, dem Demand, cfg Config, ctl *anytime.Ctl) (Report, error) {
	plan, hit, err := planFor(ctl, g, dem, cfg)
	if err != nil {
		return Report{}, err
	}
	r, err := plan.Eval(pfailOf(g))
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Reliability: r,
		Engine:      EngineCore,
		Cut:         append([]EdgeID(nil), plan.Cut...),
		K:           plan.K(),
		Alpha:       plan.Alpha,
		Assignments: plan.Assignments,
		Lo:          r,
		Hi:          r,
	}
	rep.planCacheHit = hit
	if !hit {
		rep.MaxFlowCalls = plan.Stats.MaxFlowCalls
		rep.Configs = plan.Stats.SideConfigs[0] + plan.Stats.SideConfigs[1]
		rep.augmentingPaths = plan.Stats.AugmentingPaths
		rep.prunedCapacity = plan.Stats.PrunedCapacity
		rep.prunedClosure = plan.Stats.PrunedClosure
		rep.frontierMaxFlowCalls = plan.Stats.FrontierMaxFlowCalls
	}
	// The kernel fields describe the evaluate phase this call actually
	// ran, so they report even on a cache hit — the cached plan's tables
	// did the work.
	rep.kernelTerms = plan.Stats.KernelTerms
	rep.kernelSegments = plan.Stats.KernelSegments
	rep.kernelLanes = plan.Stats.KernelLanes
	return rep, nil
}

func computeChain(g *Graph, dem Demand, cfg Config, ctl *anytime.Ctl) (Report, error) {
	maxCut := cfg.MaxBottleneck
	if maxCut <= 0 {
		maxCut = 3
	}
	cuts, err := chain.Find(g, dem, maxCut, 0)
	if err != nil {
		return Report{}, err
	}
	res, err := chain.Solve(g, dem, cuts, chain.Options{
		MaxSegmentEdges:  cfg.MaxSideEdges,
		MaxAssignmentSet: cfg.MaxAssignmentSet,
		Parallelism:      cfg.Parallelism,
		Ctl:              ctl,
	})
	if err != nil {
		return Report{}, err
	}
	var flat []EdgeID
	for _, cut := range res.Cuts {
		flat = append(flat, cut...)
	}
	return Report{
		Reliability:  res.Reliability,
		Engine:       EngineChain,
		Cut:          flat,
		K:            len(flat),
		MaxFlowCalls: res.MaxFlowCalls,
		Lo:           res.Reliability,
		Hi:           res.Reliability,
	}, nil
}

func computeFactoring(g *Graph, dem Demand, cfg Config, ctl *anytime.Ctl) (Report, error) {
	res, err := reliability.Factoring(g, dem, reliability.Options{Parallelism: cfg.Parallelism, Ctl: ctl})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Reliability:  res.Reliability,
		Engine:       EngineFactoring,
		MaxFlowCalls: res.Stats.MaxFlowCalls,
		Configs:      res.Stats.Configs,
		Partial:      res.Partial,
		Lo:           res.Lo,
		Hi:           res.Hi,
		Reason:       res.Reason,
	}, nil
}

// Exact computes the reliability in exact rational arithmetic by full
// enumeration — the validation oracle. Exponential in |E| and sequential;
// use only on small graphs.
func Exact(g *Graph, dem Demand) (*big.Rat, error) {
	return reliability.NaiveExact(g, dem)
}

// Estimate is a Monte Carlo reliability estimate with a standard error.
type Estimate = reliability.Estimate

// MonteCarlo estimates the reliability from `samples` random failure
// configurations; deterministic per seed regardless of parallelism. It
// scales to graphs far beyond the exact engines.
func MonteCarlo(g *Graph, dem Demand, samples int, seed int64) (Estimate, error) {
	return reliability.MonteCarlo(g, dem, samples, seed, reliability.Options{})
}

// Bound is a guaranteed reliability interval.
type Bound = reliability.Bound

// Bounds computes guaranteed lower and upper reliability bounds in
// polynomial time (given the minimal-cut enumeration budget maxCutSize).
func Bounds(g *Graph, dem Demand, maxCutSize int) (Bound, error) {
	return reliability.Bounds(g, dem, maxCutSize)
}

// Bottleneck is a validated α-bottleneck split: a minimal s–t cut whose
// removal leaves exactly two components.
type Bottleneck = mincut.Bottleneck

// FindBottleneck searches for the α-bottleneck link set with the most
// balanced split among minimal s–t cuts of at most maxSize links.
func FindBottleneck(g *Graph, s, t NodeID, maxSize int) (*Bottleneck, error) {
	return mincut.Find(g, s, t, maxSize)
}

// SplitBottleneck validates an explicit bottleneck link set.
func SplitBottleneck(g *Graph, s, t NodeID, cut []EdgeID) (*Bottleneck, error) {
	return mincut.Split(g, s, t, cut)
}

// MinCuts enumerates every minimal s–t cut with at most maxSize links.
func MinCuts(g *Graph, s, t NodeID, maxSize int) [][]EdgeID {
	return mincut.EnumerateMinimal(g, s, t, maxSize)
}
