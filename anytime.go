package flowrel

import (
	"context"
	"math/big"
	"strings"
	"time"

	"flowrel/internal/anytime"
	"flowrel/internal/reliability"
	"flowrel/internal/stats"
)

// Budget bounds the work of an anytime computation: a configuration
// count, a max-flow-call count and a soft wall-clock deadline (the zero
// value is unlimited). Budgets are honoured cooperatively at an amortized
// grain, so short overshoots of one check batch per worker are possible.
type Budget = anytime.Budget

// ErrInterrupted is wrapped by every error returned because a computation
// was stopped — by context cancellation, a soft deadline or budget
// exhaustion — before it could produce even a partial answer. Engines
// that can certify partial mass (factoring, the enumeration engines,
// most-probable-states) do not error on interruption; they return their
// result with Partial set instead.
var ErrInterrupted = anytime.ErrInterrupted

// ladderSamples caps the Monte Carlo rung of the degradation ladder; the
// remaining budget usually stops it much earlier.
const ladderSamples = 1 << 20

// computeLadder is EngineAuto under a controller: each rung receives a
// slice of the *remaining* budget (so a stuck rung cannot starve the ones
// below), and its work is absorbed back into the parent before the next
// rung starts.
//
//	core (¼)  → chain (⅓)  → factoring (½)  → states bound (½)  → IS estimate (rest)
//
// The structural rungs answer exactly or not at all. Factoring and the
// most-probable-states rung are anytime: interrupted, they certify an
// interval, and the ladder keeps the narrower of the two. The final rung
// spends whatever budget is left on an importance-sampled point estimate
// inside that interval.
// rungNote labels a rung's decline reason, avoiding "core: core: …"
// stutter when the underlying error already carries the rung's prefix.
func rungNote(rung, msg string) string {
	if strings.HasPrefix(msg, rung+": ") {
		return msg
	}
	return rung + ": " + msg
}

// traceRung fires a ladder-transition event when a tracer is installed.
func traceRung(ctl *anytime.Ctl, rung, outcome, reason string, start time.Time) {
	if tr := ctl.Tracer(); tr != nil {
		tr.OnRung(stats.RungEvent{
			Rung:     rung,
			Outcome:  outcome,
			Reason:   reason,
			Duration: time.Since(start),
		})
	}
}

func computeLadder(g *Graph, dem Demand, cfg Config, ctl *anytime.Ctl) (Report, error) {
	var why []string

	// Rung 1: the paper's bottleneck decomposition.
	if !ctl.Stopped() {
		rungStart := time.Now()
		sub := ctl.Sub(0.25)
		rep, err := computeCore(g, dem, cfg, sub)
		ctl.Absorb(sub)
		if err == nil {
			traceRung(ctl, "core", "answered", "", rungStart)
			rep.Rung = "core"
			return rep, nil
		}
		traceRung(ctl, "core", "declined", err.Error(), rungStart)
		why = append(why, rungNote("core", err.Error()))
	}

	// Rung 2: a sequence of cuts can decompose graphs a single balanced
	// cut cannot.
	if !ctl.Stopped() {
		rungStart := time.Now()
		sub := ctl.Sub(1.0 / 3)
		rep, err := computeChain(g, dem, cfg, sub)
		ctl.Absorb(sub)
		if err == nil {
			traceRung(ctl, "chain", "answered", "", rungStart)
			rep.Rung = "chain"
			return rep, nil
		}
		traceRung(ctl, "chain", "declined", err.Error(), rungStart)
		why = append(why, rungNote("chain", err.Error()))
	}

	// Rung 3: factoring — exact when it finishes, a certified interval
	// when it does not.
	best := Report{Engine: EngineAuto, Partial: true, Lo: 0, Hi: 1, Reliability: 0.5, Rung: "factoring"}
	rungStart := time.Now()
	sub := ctl.Sub(0.5)
	res, err := reliability.Factoring(g, dem, reliability.Options{Parallelism: cfg.Parallelism, Ctl: sub})
	ctl.Absorb(sub)
	if err != nil {
		// A panic or validation failure, not an interruption — surface it.
		traceRung(ctl, "factoring", "error", err.Error(), rungStart)
		return Report{}, err
	}
	if !res.Partial {
		traceRung(ctl, "factoring", "answered", "", rungStart)
		return Report{
			Reliability:  res.Reliability,
			Engine:       EngineFactoring,
			Rung:         "factoring",
			Lo:           res.Reliability,
			Hi:           res.Reliability,
			MaxFlowCalls: ctl.MaxFlowCalls(),
			Configs:      ctl.Configs(),
			Reason:       strings.Join(why, "; "),
		}, nil
	}
	best.Lo, best.Hi, best.Reliability = res.Lo, res.Hi, res.Reliability
	traceRung(ctl, "factoring", "partial", res.Reason, rungStart)
	why = append(why, "factoring: "+res.Reason)

	// Rung 4: most-probable-states — certified no matter where it stops;
	// keep whichever interval is narrower.
	rungStart = time.Now()
	sub = ctl.Sub(0.5)
	b, err := reliability.MostProbableStatesOpt(g, dem, g.NumEdges(), reliability.Options{Ctl: sub})
	ctl.Absorb(sub)
	if err != nil {
		traceRung(ctl, "most-probable-states", "error", err.Error(), rungStart)
		why = append(why, "most-probable-states: "+err.Error())
	} else if b.Upper-b.Lower < best.Hi-best.Lo {
		traceRung(ctl, "most-probable-states", "improved", b.Reason, rungStart)
		best.Lo, best.Hi = b.Lower, b.Upper
		best.Reliability = (b.Lower + b.Upper) / 2
		best.Rung = "most-probable-states"
		best.Partial = b.Partial
		if b.Partial {
			why = append(why, "most-probable-states: "+b.Reason)
		}
	} else {
		traceRung(ctl, "most-probable-states", "kept-previous", b.Reason, rungStart)
		if b.Partial {
			why = append(why, "most-probable-states: "+b.Reason)
		}
	}

	// Rung 5: spend what remains on an importance-sampled point estimate
	// inside the certified interval.
	if best.Partial && best.Hi > best.Lo {
		rungStart = time.Now()
		sub = ctl.Sub(1)
		est, err := reliability.UnreliabilityIS(g, dem, ladderSamples, 1, 0.3,
			reliability.Options{Parallelism: cfg.Parallelism, Ctl: sub})
		ctl.Absorb(sub)
		if err != nil {
			traceRung(ctl, "importance-sampling", "error", err.Error(), rungStart)
			why = append(why, "importance-sampling: "+err.Error())
		} else if est.Samples > 0 {
			traceRung(ctl, "importance-sampling", "estimated", "", rungStart)
			r := 1 - est.Reliability
			if r < best.Lo {
				r = best.Lo
			}
			if r > best.Hi {
				r = best.Hi
			}
			best.Reliability = r
			best.Rung = "importance-sampling"
		}
	}

	best.MaxFlowCalls = ctl.MaxFlowCalls()
	best.Configs = ctl.Configs()
	best.Reason = strings.Join(why, "; ")
	return best, nil
}

// ExactCtx is the rational-arithmetic oracle under a context. The oracle
// is all-or-nothing — there is no meaningful partial *big.Rat — so a
// cancelled run returns an error wrapping ErrInterrupted.
func ExactCtx(ctx context.Context, g *Graph, dem Demand) (*big.Rat, error) {
	return reliability.NaiveExactCtx(ctx, g, dem)
}

// MonteCarloCtx is MonteCarlo under a context and budget: an interrupted
// run returns the estimate over the samples completed so far with
// Estimate.Partial set (and Samples possibly 0, making it vacuous).
func MonteCarloCtx(ctx context.Context, g *Graph, dem Demand, samples int, seed int64, b Budget) (Estimate, error) {
	return reliability.MonteCarlo(g, dem, samples, seed, reliability.Options{Ctl: anytime.New(ctx, b)})
}

// UnreliabilityISCtx is UnreliabilityIS under a context and budget; same
// partial-estimate contract as MonteCarloCtx.
func UnreliabilityISCtx(ctx context.Context, g *Graph, dem Demand, samples int, seed int64, bias float64, b Budget) (Estimate, error) {
	return reliability.UnreliabilityIS(g, dem, samples, seed, bias, reliability.Options{Ctl: anytime.New(ctx, b)})
}

// MostProbableStatesCtx is MostProbableStates under a context and budget.
// The bounding construction certifies its interval no matter where the
// enumeration stops, so an interrupted run returns a wider — but still
// guaranteed — Bound with Partial set. Pass maxFailures = |E| and a
// budget to get the pure anytime form.
func MostProbableStatesCtx(ctx context.Context, g *Graph, dem Demand, maxFailures int, b Budget) (Bound, error) {
	return reliability.MostProbableStatesOpt(g, dem, maxFailures, reliability.Options{Ctl: anytime.New(ctx, b)})
}
