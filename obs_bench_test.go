package flowrel

import (
	"os"
	"testing"
)

// benchPlanEval returns a benchmark function running the plan-reuse hot
// path (one Eval per iteration) with the metrics registry switched as
// given — the overhead probe for the observability layer.
func benchPlanEval(b *testing.B, statsOn bool) func(b *testing.B) {
	g, dem, _ := clusteredInstance(b, 6)
	ResetPlanCache()
	plan, err := CompilePlan(g, dem, Config{})
	if err != nil {
		b.Fatal(err)
	}
	pf := plan.BasePFail()
	return func(b *testing.B) {
		SetStatsEnabled(statsOn)
		defer SetStatsEnabled(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Eval(pf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkNilTracerOverhead isolates the cost of the always-on
// instrumentation on the two hottest paths of BenchmarkPlanReuse:
// evaluation and the cached-compile lookup, each with the metrics
// registry enabled (the default) and disabled (every counter update is
// one atomic load and branch). Neither mode installs a tracer — that is
// the shipped configuration. The deltas are the observability tax; the
// CI gate (TestNilTracerOverheadGate) holds the disabled mode within 2%
// of the enabled one.
func BenchmarkNilTracerOverhead(b *testing.B) {
	b.Run("eval/stats-on", benchPlanEval(b, true))
	b.Run("eval/stats-off", benchPlanEval(b, false))

	g, dem, _ := clusteredInstance(b, 6)
	ResetPlanCache()
	if _, err := CompilePlan(g, dem, Config{}); err != nil {
		b.Fatal(err)
	}
	cached := func(statsOn bool) func(b *testing.B) {
		return func(b *testing.B) {
			SetStatsEnabled(statsOn)
			defer SetStatsEnabled(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := CompilePlan(g, dem, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("cached-compile/stats-on", cached(true))
	b.Run("cached-compile/stats-off", cached(false))
}

// TestNilTracerOverheadGate is the CI enforcement of the < 2% overhead
// budget: with no tracer installed, running with the metrics registry
// enabled must stay within 2% of running with it disabled on the plan
// evaluation hot path. Timing gates are inherently noisy, so the test
// only runs when FLOWREL_OVERHEAD_GATE is set (the bench CI job sets
// it); it takes the best of several trials per mode to shed scheduler
// jitter.
func TestNilTracerOverheadGate(t *testing.T) {
	if os.Getenv("FLOWREL_OVERHEAD_GATE") == "" {
		t.Skip("set FLOWREL_OVERHEAD_GATE=1 to run the timing gate")
	}
	g, dem, _ := clusteredInstance(t, 6)
	ResetPlanCache()
	plan, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pf := plan.BasePFail()

	measure := func(statsOn bool) float64 {
		SetStatsEnabled(statsOn)
		defer SetStatsEnabled(true)
		r := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := plan.Eval(pf); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}

	// Interleave the two modes so clock drift and frequency scaling hit
	// both equally, then compare best-of: the minimum is the least-noisy
	// estimate of each mode's true cost.
	const trials = 5
	off, on := 0.0, 0.0
	for i := 0; i < trials; i++ {
		o := measure(false)
		n := measure(true)
		if i == 0 || o < off {
			off = o
		}
		if i == 0 || n < on {
			on = n
		}
	}
	ratio := on / off
	t.Logf("plan eval: stats-off %.0f ns/op, stats-on %.0f ns/op (ratio %.4f)", off, on, ratio)
	if ratio > 1.02 {
		t.Errorf("enabled instrumentation costs %.1f%% on the eval hot path, budget is 2%%",
			100*(ratio-1))
	}
}
