// The operator's view: given a streaming overlay, answer the questions an
// operator actually asks. Which links should we harden first (Birnbaum
// importance)? What does peer churn — not just link loss — cost us (node
// splitting)? What if our two cross-cluster links share a conduit
// (shared-risk groups)? And how good do links need to be for the SLA
// (reliability polynomial)?
package main

import (
	"fmt"
	"log"
	"sort"

	"flowrel"
)

func main() {
	// Two campuses joined by two cross-links; the stream needs d = 1.
	o, err := flowrel.ClusteredOverlay(5, 8, 2, 1, 2, 0.1, 6)
	if err != nil {
		log.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	base, err := flowrel.Reliability(o.G, dem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d links, cross-cluster links %v; baseline reliability %.6f\n\n",
		o.G.NumEdges(), o.Bottleneck, base)

	// 1. Hardening priorities.
	imps, err := flowrel.BirnbaumImportance(o.G, dem)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(imps, func(i, j int) bool { return imps[i].Birnbaum > imps[j].Birnbaum })
	fmt.Println("harden these first (Birnbaum importance):")
	for _, imp := range imps[:3] {
		e := o.G.Edge(imp.Link)
		fmt.Printf("  link %d (%d→%d): importance %.4f, making it perfect buys %+.4f\n",
			imp.Link, e.U, e.V, imp.Birnbaum, imp.Improvement)
	}

	// 2. Peer churn: every relay peer may be offline 5% of the time.
	var peers []flowrel.Peer
	for _, p := range o.Peers {
		if p != dem.T {
			peers = append(peers, flowrel.Peer{Node: p, PFail: 0.05})
		}
	}
	inst, err := flowrel.WithChurn(o.G, dem, peers)
	if err != nil {
		log.Fatal(err)
	}
	withChurn, err := flowrel.Compute(inst.G, inst.Demand, flowrel.Config{Engine: flowrel.EngineFactoring})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith 5%% peer churn on every relay: %.6f (churn costs %+.4f)\n",
		withChurn.Reliability, withChurn.Reliability-base)

	// 3. Correlated cross-links: both in one conduit.
	groups := []flowrel.RiskGroup{{PFail: 0.05, Links: o.Bottleneck}}
	correlated, err := flowrel.ReliabilityWithRiskGroups(o.G, dem, groups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("if the cross-links share a conduit (p=0.05): %.6f (correlation costs %+.4f)\n",
		correlated, correlated-base)

	// 4. The SLA question: how good must links be for R ≥ 0.999?
	P, err := flowrel.Polynomial(o.G, dem)
	if err != nil {
		log.Fatal(err)
	}
	if p, ok := P.SolveFor(0.999); ok {
		fmt.Printf("\nfor a 99.9%% SLA every link must fail with p ≤ %.5f\n", p)
	} else {
		fmt.Println("\nno uniform link quality reaches a 99.9% SLA on this topology")
	}
	if p, ok := P.SolveFor(0.99); ok {
		fmt.Printf("for a 99%%   SLA every link must fail with p ≤ %.5f\n", p)
	}
	fmt.Printf("(smallest admitting route: %d links; single points of failure: smallest cut has %d link(s))\n",
		P.MinAdmittingLinks(), P.MinDisconnectingLinks())
}
