// Inter-cluster bottleneck study: two well-provisioned clusters (say, two
// ISPs or two campus networks) exchange a stream over a couple of
// cross-cluster links — exactly the bottleneck regime of the paper. This
// example sweeps the bottleneck links' failure probability, showing how
// completely they dominate end-to-end reliability, and measures the
// speedup of the decomposition algorithm over naive enumeration on the
// same instances.
package main

import (
	"fmt"
	"log"
	"time"

	"flowrel"
)

func build(pCut float64) (*flowrel.Graph, flowrel.Demand, []flowrel.EdgeID) {
	const pIn = 0.01 // intra-cluster links are reliable
	b := flowrel.NewBuilder()
	s := b.AddNamedNode("s")
	a1 := b.AddNamedNode("a1")
	a2 := b.AddNamedNode("a2")
	a3 := b.AddNamedNode("a3")
	b1 := b.AddNamedNode("b1")
	b2 := b.AddNamedNode("b2")
	b3 := b.AddNamedNode("b3")
	t := b.AddNamedNode("t")
	// Source cluster: rich internal connectivity.
	b.AddEdge(s, a1, 2, pIn)
	b.AddEdge(s, a2, 2, pIn)
	b.AddEdge(s, a3, 2, pIn)
	b.AddEdge(a1, a2, 1, pIn)
	b.AddEdge(a2, a3, 1, pIn)
	b.AddEdge(a1, a3, 1, pIn)
	// The two cross-cluster links.
	c1 := b.AddEdge(a1, b1, 1, pCut)
	c2 := b.AddEdge(a3, b3, 1, pCut)
	// Sink cluster.
	b.AddEdge(b1, b2, 1, pIn)
	b.AddEdge(b2, b3, 1, pIn)
	b.AddEdge(b1, b3, 1, pIn)
	b.AddEdge(b1, t, 2, pIn)
	b.AddEdge(b2, t, 2, pIn)
	b.AddEdge(b3, t, 2, pIn)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g, flowrel.Demand{S: s, T: t, D: 2}, []flowrel.EdgeID{c1, c2}
}

func main() {
	fmt.Println("two clusters, 2 cross-cluster links, demand d = 2 sub-streams")
	fmt.Printf("%-8s %-14s %-14s %-12s %-12s\n", "p_cut", "reliability", "upper bound", "t_core", "t_naive")
	for _, pCut := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5} {
		g, dem, cut := build(pCut)

		t0 := time.Now()
		rep, err := flowrel.Compute(g, dem, flowrel.Config{Engine: flowrel.EngineCore, Bottleneck: cut})
		if err != nil {
			log.Fatal(err)
		}
		tCore := time.Since(t0)

		t1 := time.Now()
		naive, err := flowrel.Compute(g, dem, flowrel.Config{Engine: flowrel.EngineNaive})
		if err != nil {
			log.Fatal(err)
		}
		tNaive := time.Since(t1)
		if diff := rep.Reliability - naive.Reliability; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("engines disagree: %v vs %v", rep.Reliability, naive.Reliability)
		}

		// With d = 2 over two unit cross-links, both must be up:
		// reliability ≤ (1-p_cut)² — the bound the cut analysis finds.
		bd, err := flowrel.Bounds(g, dem, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %-14.6f %-14.6f %-12s %-12s\n",
			pCut, rep.Reliability, bd.Upper, tCore.Round(time.Microsecond), tNaive.Round(time.Microsecond))
	}
	fmt.Println("\nthe cross-cluster links dominate: reliability tracks (1-p_cut)² almost exactly,")
	fmt.Println("and the decomposition algorithm only ever enumerates the 2^6 configurations of")
	fmt.Println("one cluster at a time instead of 2^14 for the whole network.")
}
