// Quickstart: build a small streaming network, compute its exact
// reliability with several engines, and inspect the bottleneck
// decomposition the solver used.
package main

import (
	"fmt"
	"log"

	"flowrel"
)

func main() {
	// A source cluster {s, a, b} and a sink cluster {c, d, t} joined by a
	// single bottleneck link b→c of capacity 2. The stream has bit-rate 2
	// (two unit sub-streams).
	b := flowrel.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	bb := b.AddNamedNode("b")
	c := b.AddNamedNode("c")
	d := b.AddNamedNode("d")
	t := b.AddNamedNode("t")
	b.AddEdge(s, a, 1, 0.10) // each link: capacity, failure probability
	b.AddEdge(s, bb, 2, 0.10)
	b.AddEdge(a, bb, 1, 0.10)
	b.AddEdge(bb, c, 2, 0.02) // the bottleneck link
	b.AddEdge(c, d, 1, 0.10)
	b.AddEdge(c, t, 2, 0.10)
	b.AddEdge(d, t, 1, 0.10)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	dem := flowrel.Demand{S: s, T: t, D: 2}

	// One-liner with automatic engine selection.
	r, err := flowrel.Reliability(g, dem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reliability of %v on %v: %.6f\n\n", dem, g, r)

	// Full control: inspect the decomposition.
	rep, err := flowrel.Compute(g, dem, flowrel.Config{Engine: flowrel.EngineCore})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine %v found bottleneck links %v (k=%d, alpha=%.2f)\n",
		rep.Engine, rep.Cut, rep.K, rep.Alpha)
	fmt.Printf("assignments of the %d sub-streams to the bottleneck: %v\n\n", dem.D, rep.Assignments)

	// Every exact engine agrees; the estimator and the bounds bracket it.
	for _, eng := range []flowrel.Engine{flowrel.EngineNaive, flowrel.EngineFactoring} {
		alt, err := flowrel.Compute(g, dem, flowrel.Config{Engine: eng})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %.12f\n", eng, alt.Reliability)
	}
	est, err := flowrel.MonteCarlo(g, dem, 200000, 1)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := est.ConfidenceInterval(1.96)
	fmt.Printf("%-10s %.6f (95%% CI [%.6f, %.6f])\n", "montecarlo", est.Reliability, lo, hi)
	bd, err := flowrel.Bounds(g, dem, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s [%.6f, %.6f]\n", "bounds", bd.Lower, bd.Upper)

	// Where do the sub-streams actually flow?
	paths, err := flowrel.DeliveryPaths(g, dem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndelivery paths when every link is up:")
	for i, p := range paths {
		fmt.Printf("  sub-stream %d: ", i+1)
		for j, n := range p.Nodes {
			if j > 0 {
				fmt.Print(" → ")
			}
			fmt.Print(g.NodeName(n))
		}
		fmt.Println()
	}
}
