// Large mesh overlays: beyond ~30 links exact enumeration is hopeless, so
// this example shows the scalable toolchain on a 120-link random push
// mesh — guaranteed bounds, Monte Carlo estimation, and the streaming
// simulator — and validates them against each other. On a smaller mesh it
// also cross-checks everything against the exact factoring engine.
package main

import (
	"fmt"
	"log"

	"flowrel"
)

func main() {
	// Small mesh first: exact value available.
	small, err := flowrel.MeshOverlay(10, 2, 2, 2, 0.08, 11)
	if err != nil {
		log.Fatal(err)
	}
	demS := small.Demand(small.Peers[len(small.Peers)-1])
	exact, err := flowrel.Compute(small.G, demS, flowrel.Config{Engine: flowrel.EngineFactoring})
	if err != nil {
		log.Fatal(err)
	}
	estS, err := flowrel.MonteCarlo(small.G, demS, 400000, 3)
	if err != nil {
		log.Fatal(err)
	}
	bdS, err := flowrel.Bounds(small.G, demS, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("small mesh (%d links, d=%d):\n", small.G.NumEdges(), demS.D)
	fmt.Printf("  exact (factoring) : %.6f\n", exact.Reliability)
	fmt.Printf("  monte carlo       : %.6f ± %.6f\n", estS.Reliability, 2*estS.StdErr)
	fmt.Printf("  bounds            : [%.6f, %.6f]\n\n", bdS.Lower, bdS.Upper)

	// Large mesh: 60 peers, ~120 links. Exact engines cannot enumerate
	// 2^120 configurations; the estimator, bounds and simulator still run.
	big, err := flowrel.MeshOverlay(60, 2, 2, 2, 0.08, 12)
	if err != nil {
		log.Fatal(err)
	}
	peer := big.Peers[len(big.Peers)-1]
	dem := big.Demand(peer)
	fmt.Printf("large mesh (%d peers, %d links, d=%d):\n", len(big.Peers), big.G.NumEdges(), dem.D)

	est, err := flowrel.MonteCarlo(big.G, dem, 400000, 4)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := est.ConfidenceInterval(1.96)
	fmt.Printf("  monte carlo       : %.6f (95%% CI [%.6f, %.6f])\n", est.Reliability, lo, hi)

	bd, err := flowrel.Bounds(big.G, dem, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  bounds            : [%.6f, %.6f]\n", bd.Lower, bd.Upper)

	rep, err := flowrel.Simulate(big.G, dem, flowrel.SimConfig{Sessions: 200000, Seed: 5, CollectPaths: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulator         : delivery rate %.6f ± %.6f\n", rep.DeliveryRate, 2*rep.StdErr)
	fmt.Printf("                      mean sub-streams %.3f of %d, mean path length %.2f hops\n",
		rep.MeanSubstreams, dem.D, rep.MeanHops)

	if est.Reliability < bd.Lower-5*est.StdErr || est.Reliability > bd.Upper+5*est.StdErr {
		log.Fatal("estimate escaped the guaranteed bounds — should be impossible")
	}
	fmt.Println("\nestimator, simulator and bounds are mutually consistent.")
}
