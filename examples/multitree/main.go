// Multi-tree streaming (the SplitStream scenario of the paper's §II):
// divide the stream into several unit-rate sub-streams and push each down
// its own interior-disjoint tree. This example quantifies, exactly, what
// the redundancy buys each peer: full-stream reliability, the probability
// of at least half the stream (enough for FEC/MDC reconstruction), and
// the expected delivered fraction — compared with a single tree.
package main

import (
	"fmt"
	"log"

	"flowrel"
)

const pFail = 0.03

func main() {
	single, err := flowrel.TreeOverlay(2, 3, 2, pFail)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := flowrel.MultiTreeOverlay(14, 2, 2, pFail)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("per-link failure probability: %.2f\n\n", pFail)
	fmt.Println("single tree (fanout 2, depth 3, whole stream per link):")
	fmt.Printf("  %-8s %-10s %-12s %-12s\n", "peer", "P(full)", "P(≥half)", "E[fraction]")
	for _, peer := range []int{0, 5, len(single.Peers) - 1} {
		row(single, single.Peers[peer], fmt.Sprintf("p%d", peer))
	}

	fmt.Println("\nmulti-tree (14 peers, 2 interior-disjoint stripes):")
	fmt.Printf("  %-8s %-10s %-12s %-12s\n", "peer", "P(full)", "P(≥half)", "E[fraction]")
	for _, peer := range []int{0, 7, 13} {
		row(multi, multi.Peers[peer], fmt.Sprintf("p%d", peer))
	}

	// Show the two sub-stream routes for one peer.
	peer := multi.Peers[13]
	paths, err := flowrel.DeliveryPaths(multi.G, multi.Demand(peer))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsub-stream routes to %s:\n", multi.G.NodeName(peer))
	for i, p := range paths {
		fmt.Printf("  stripe %d (%d hops): ", i+1, p.Hops())
		for j, n := range p.Nodes {
			if j > 0 {
				fmt.Print(" → ")
			}
			fmt.Print(multi.G.NodeName(n))
		}
		fmt.Println()
	}

	// Cross-check the exact numbers with the streaming simulator.
	rep, err := flowrel.Simulate(multi.G, multi.Demand(peer), flowrel.SimConfig{Sessions: 100000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := flowrel.Reliability(multi.G, multi.Demand(peer))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulator cross-check for %s: delivery rate %.4f ± %.4f (exact %.4f)\n",
		multi.G.NodeName(peer), rep.DeliveryRate, 2*rep.StdErr, exact)
}

// row prints the exact delivery metrics for one peer. P(≥ j sub-streams)
// is the flow reliability at demand j, so each column is one exact
// computation.
func row(o *flowrel.Overlay, peer flowrel.NodeID, name string) {
	d := o.Substreams
	dem := o.Demand(peer)
	pFull, err := flowrel.Reliability(o.G, dem)
	if err != nil {
		log.Fatal(err)
	}
	half := (d + 1) / 2
	pHalf, err := flowrel.Reliability(o.G, flowrel.Demand{S: dem.S, T: dem.T, D: half})
	if err != nil {
		log.Fatal(err)
	}
	frac := 0.0
	for j := 1; j <= d; j++ {
		r, err := flowrel.Reliability(o.G, flowrel.Demand{S: dem.S, T: dem.T, D: j})
		if err != nil {
			log.Fatal(err)
		}
		frac += r
	}
	frac /= float64(d)
	fmt.Printf("  %-8s %-10.6f %-12.6f %-12.6f\n", name, pFull, pHalf, frac)
}
