// Delivery-chain study: a stream hops through a chain of clusters
// (origin → regional PoPs → edge cluster → subscriber), each pair joined
// by a couple of provisioned links. This is the regime where the paper's
// single-bottleneck decomposition starts to struggle — whichever cut you
// pick, one side still contains almost the whole chain — and where this
// library's chain extension shines: it decomposes along *every* cut at
// once, paying only per-block enumeration. The example solves the same
// instances with naive enumeration (where feasible), the single-cut
// algorithm and the chain solver, and prints the deliverable-rate
// distribution a subscriber actually experiences.
package main

import (
	"fmt"
	"log"
	"time"

	"flowrel"
)

func main() {
	fmt.Println("delivery chains: b blocks of 3 nodes, 2-link cuts, d = 2 sub-streams")
	fmt.Printf("%-8s %-6s %-12s %-12s %-12s %-14s\n", "blocks", "|E|", "t_naive", "t_core", "t_chain", "reliability")
	for _, blocks := range []int{2, 3, 4, 5, 6} {
		o, cuts, err := flowrel.ChainOverlay(blocks, 3, 2, 2, 2, 2, 0.08, int64(blocks))
		if err != nil {
			log.Fatal(err)
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])

		t0 := time.Now()
		ch, err := flowrel.ChainReliability(o.G, dem, cuts, flowrel.ChainOptions{})
		if err != nil {
			log.Fatal(err)
		}
		tChain := time.Since(t0)

		tCore := "-"
		if blocks <= 5 {
			t1 := time.Now()
			rep, err := flowrel.Compute(o.G, dem, flowrel.Config{
				Engine: flowrel.EngineCore, Bottleneck: cuts[0], MaxSideEdges: 40,
			})
			if err == nil {
				tCore = time.Since(t1).Round(time.Microsecond).String()
				if diff := rep.Reliability - ch.Reliability; diff > 1e-9 || diff < -1e-9 {
					log.Fatalf("core and chain disagree: %v vs %v", rep.Reliability, ch.Reliability)
				}
			}
		}
		tNaive := "-"
		if o.G.NumEdges() <= 24 {
			t2 := time.Now()
			rep, err := flowrel.Compute(o.G, dem, flowrel.Config{Engine: flowrel.EngineNaive})
			if err == nil {
				tNaive = time.Since(t2).Round(time.Microsecond).String()
				if diff := rep.Reliability - ch.Reliability; diff > 1e-9 || diff < -1e-9 {
					log.Fatalf("naive and chain disagree: %v vs %v", rep.Reliability, ch.Reliability)
				}
			}
		}
		fmt.Printf("%-8d %-6d %-12s %-12s %-12s %-14.6f\n",
			blocks, o.G.NumEdges(), tNaive, tCore, tChain.Round(time.Microsecond), ch.Reliability)
	}

	// What a subscriber at the end of a 5-block chain experiences.
	o, cuts, err := flowrel.ChainOverlay(5, 3, 2, 2, 2, 2, 0.08, 5)
	if err != nil {
		log.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	ds, err := flowrel.FlowDistributionFactored(o.G, dem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubscriber at the end of the 5-block chain (%d links, %d cuts):\n", o.G.NumEdges(), len(cuts))
	for v, p := range ds.P {
		fmt.Printf("  P(%d of %d sub-streams) = %.6f\n", v, ds.D, p)
	}
	fmt.Printf("  expected delivered fraction: %.1f%%\n", 100*ds.MeanFraction())

	// The chain structure also tells you *where* reliability is lost:
	// most-probable-states shows how much mass sits in 0/1/2-failure
	// patterns.
	layers, tail := flowrel.FailureLayerMass(o.G, 2)
	fmt.Printf("\nfailure-pattern mass: none %.4f, single %.4f, double %.4f, deeper %.4f\n",
		layers[0], layers[1], layers[2], tail)
	bd, err := flowrel.MostProbableStates(o.G, dem, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified from ≤2-failure patterns alone: reliability ∈ [%.4f, %.4f]\n", bd.Lower, bd.Upper)
}
