package flowrel_test

import (
	"fmt"

	"flowrel"
)

// The one-line API: reliability of delivering one sub-stream across a
// bridge between two diamonds.
func ExampleReliability() {
	o := flowrel.Figure2Overlay()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	r, err := flowrel.Reliability(o.G, dem)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.6f\n", r)
	// Output: 0.882648
}

// Compute exposes the decomposition the solver used: the bottleneck links,
// their count k, the balance α, and the assignment family 𝒟.
func ExampleCompute() {
	o := flowrel.Figure4Overlay()
	dem := o.Demand(o.Peers[0])
	rep, err := flowrel.Compute(o.G, dem, flowrel.Config{Engine: flowrel.EngineCore})
	if err != nil {
		panic(err)
	}
	fmt.Printf("R = %.6f with k = %d bottleneck links, |D| = %d\n",
		rep.Reliability, rep.K, len(rep.Assignments))
	for _, a := range rep.Assignments {
		fmt.Println(" ", a)
	}
	// Output:
	// R = 0.922455 with k = 2 bottleneck links, |D| = 3
	//   (0, 2)
	//   (1, 1)
	//   (2, 0)
}

// Graphs parse from a line-oriented text format.
func ExampleParseTextString() {
	f, err := flowrel.ParseTextString(`
		edge s a 2 0.1
		edge a t 2 0.05
		demand s t 2
	`)
	if err != nil {
		panic(err)
	}
	r, err := flowrel.Reliability(f.Graph, *f.Demand)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.4f\n", r)
	// Output: 0.8550
}

// The deliverable-rate distribution answers every partial-delivery
// question at once.
func ExampleFlowDistribution() {
	o := flowrel.Figure4Overlay()
	ds, err := flowrel.FlowDistribution(o.G, o.Demand(o.Peers[0]))
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(full)=%.4f P(>=1)=%.4f E[fraction]=%.4f\n",
		ds.Reliability(), ds.AtLeast(1), ds.MeanFraction())
	// Output: P(full)=0.9225 P(>=1)=0.9778 E[fraction]=0.9502
}

// Chain decomposition handles delivery chains that defeat a single cut.
func ExampleChainReliability() {
	o, cuts, err := flowrel.ChainOverlay(3, 2, 1, 2, 2, 2, 0.15, 4)
	if err != nil {
		panic(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	res, err := flowrel.ChainReliability(o.G, dem, cuts, flowrel.ChainOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d cuts, segments %v\n", len(res.Cuts), res.SegmentEdges)
	// Output: 2 cuts, segments [3 2 3]
}

// Peer churn becomes an ordinary link-failure instance by node splitting.
func ExampleWithChurn() {
	b := flowrel.NewBuilder()
	s := b.AddNamedNode("s")
	relay := b.AddNamedNode("relay")
	t := b.AddNamedNode("t")
	b.AddEdge(s, relay, 1, 0)
	b.AddEdge(relay, t, 1, 0)
	g, _ := b.Build()
	inst, err := flowrel.WithChurn(g, flowrel.Demand{S: s, T: t, D: 1},
		[]flowrel.Peer{{Node: relay, PFail: 0.1}})
	if err != nil {
		panic(err)
	}
	r, err := flowrel.Reliability(inst.G, inst.Demand)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", r)
	// Output: 0.90
}

// The reliability polynomial turns one enumeration into every sweep.
func ExamplePolynomial() {
	f, _ := flowrel.ParseTextString("edge s t 1 0\nedge s t 1 0\ndemand s t 1")
	P, err := flowrel.Polynomial(f.Graph, *f.Demand)
	if err != nil {
		panic(err)
	}
	// Two parallel links: R(p) = 1 - p².
	fmt.Printf("R(0.5) = %.2f, need p <= %.3f for R >= 0.99\n", P.Eval(0.5), solve(P, 0.99))
	// Output: R(0.5) = 0.75, need p <= 0.100 for R >= 0.99
}

func solve(P flowrel.ReliabilityPolynomial, target float64) float64 {
	p, _ := P.SolveFor(target)
	return p
}
