package flowrel

import (
	"math"
	"strings"
	"testing"
)

func TestFlowDistributionFacade(t *testing.T) {
	o := Figure4Overlay()
	dem := o.Demand(o.Peers[0])
	ds, err := FlowDistribution(o.G, dem)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Reliability(o.G, dem)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ds.Reliability()-exact) > 1e-9 {
		t.Fatalf("distribution top bucket %g vs reliability %g", ds.Reliability(), exact)
	}
	fa, err := FlowDistributionFactored(o.G, dem)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := FlowDistributionSampled(o.G, dem, 50000, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v <= dem.D; v++ {
		if math.Abs(ds.P[v]-fa.P[v]) > 1e-9 {
			t.Fatalf("exact vs factored bucket %d: %g vs %g", v, ds.P[v], fa.P[v])
		}
		if math.Abs(ds.P[v]-sa.P[v]) > 0.01 {
			t.Fatalf("exact vs sampled bucket %d: %g vs %g", v, ds.P[v], sa.P[v])
		}
	}
	if ds.Mean() <= 0 || ds.MeanFraction() > 1 {
		t.Fatalf("mean = %g, fraction = %g", ds.Mean(), ds.MeanFraction())
	}
}

func TestReduceFacade(t *testing.T) {
	// A deep tree reduces to a single chain link for any single peer.
	o, err := TreeOverlay(2, 3, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	red, err := Reduce(o.G, dem)
	if err != nil {
		t.Fatal(err)
	}
	if red.G.NumEdges() != 1 {
		t.Fatalf("reduced links = %d, want 1", red.G.NumEdges())
	}
	rOrig, err := Reliability(o.G, dem)
	if err != nil {
		t.Fatal(err)
	}
	rRed, err := Reliability(red.G, red.Demand)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rOrig-rRed) > 1e-12 {
		t.Fatalf("reduction changed reliability: %g vs %g", rOrig, rRed)
	}
}

func TestMostProbableStatesFacade(t *testing.T) {
	g, dem := figure2Demand()
	exact, err := Reliability(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := MostProbableStates(g, dem, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Lower > exact+1e-9 || exact > bd.Upper+1e-9 {
		t.Fatalf("bounds [%g, %g] miss %g", bd.Lower, bd.Upper, exact)
	}
	layers, tail := FailureLayerMass(g, 3)
	sum := tail
	for _, p := range layers {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("layer masses sum to %g", sum)
	}
	if math.Abs((bd.Upper-bd.Lower)-tail) > 1e-9 {
		t.Fatalf("interval width %g vs tail %g", bd.Upper-bd.Lower, tail)
	}
}

func TestChainFacade(t *testing.T) {
	o, cuts, err := ChainOverlay(3, 2, 1, 2, 2, 2, 0.15, 4)
	if err != nil {
		t.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])

	res, err := ChainReliability(o.G, dem, cuts, ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Compute(o.G, dem, Config{Engine: EngineNaive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-naive.Reliability) > 1e-9 {
		t.Fatalf("chain %.12f vs naive %.12f", res.Reliability, naive.Reliability)
	}

	// Automatic cut discovery (nil cuts).
	auto, err := ChainReliability(o.G, dem, nil, ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auto.Reliability-naive.Reliability) > 1e-9 {
		t.Fatalf("auto chain %.12f vs naive %.12f", auto.Reliability, naive.Reliability)
	}

	found, err := FindChain(o.G, dem, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) < 1 {
		t.Fatal("FindChain found nothing")
	}
}

func TestSuggestUpgradesFacade(t *testing.T) {
	g, dem := figure2Demand()
	plan, err := SuggestUpgrades(g, dem, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Links) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	// The bridge is the single best upgrade on this graph.
	if plan.Links[0] != 4 {
		t.Fatalf("first pick = %d, want the bridge (4)", plan.Links[0])
	}
	if plan.After[1] <= plan.After[0] || plan.After[0] <= plan.Before {
		t.Fatalf("plan not improving: %+v", plan)
	}
}

func TestSimulateContinuousFacade(t *testing.T) {
	g, dem := figure2Demand()
	const mtbf, mttr = 20.0, 3.0
	// Rebuild at the steady-state probability for the cross-check.
	b := NewBuilder()
	b.AddNodes(g.NumNodes())
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, PFailFromMTBF(mtbf, mttr))
	}
	ug, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reliability(ug, dem)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateContinuous(ug, dem, ContinuousConfig{
		Dynamics: UniformDynamics(ug, mtbf, mttr),
		Horizon:  200000,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Availability-want) > 0.015 {
		t.Fatalf("availability %g vs static %g", rep.Availability, want)
	}
}

func TestBirnbaumImportanceFacade(t *testing.T) {
	g, dem := figure2Demand()
	imps, err := BirnbaumImportance(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != g.NumEdges() {
		t.Fatalf("got %d importances", len(imps))
	}
	// The bridge (link 4) must dominate and kill everything when down.
	for _, imp := range imps {
		if imp.Link != 4 && imp.Birnbaum >= imps[4].Birnbaum {
			t.Fatalf("link %d outranks the bridge", imp.Link)
		}
	}
	if imps[4].RDown != 0 {
		t.Fatalf("bridge RDown = %g", imps[4].RDown)
	}
}

func TestWithChurnFacade(t *testing.T) {
	// A two-level tree with perfect links: reaching a depth-2 peer
	// requires its depth-1 ancestor to be present.
	o, err := TreeOverlay(2, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	deep := o.Peers[len(o.Peers)-1]
	// Every depth-1 peer churns with probability 0.2.
	peers := []Peer{{Node: o.Peers[0], PFail: 0.2}, {Node: o.Peers[1], PFail: 0.2}}
	inst, err := WithChurn(o.G, o.Demand(deep), peers)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reliability(inst.G, inst.Demand)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.8) > 1e-12 {
		t.Fatalf("R = %g, want 0.8 (one ancestor must survive churn)", r)
	}
}

func TestPolynomialFacade(t *testing.T) {
	g, dem := figure2Demand()
	P, err := Polynomial(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	// All links in figure2 share p = 0.10 except the bridge (0.05); the
	// polynomial treats p as uniform, so check against a rebuilt uniform
	// instance instead.
	b := NewBuilder()
	b.AddNodes(g.NumNodes())
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, 0.1)
	}
	ug, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reliability(ug, dem)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(P.Eval(0.1)-want) > 1e-9 {
		t.Fatalf("P(0.1) = %g, want %g", P.Eval(0.1), want)
	}
	if P.MinAdmittingLinks() != 5 { // shortest s→t route: s→a→x→y→c→t
		t.Fatalf("MinAdmittingLinks = %d", P.MinAdmittingLinks())
	}
	if P.MinDisconnectingLinks() != 1 { // the bridge
		t.Fatalf("MinDisconnectingLinks = %d", P.MinDisconnectingLinks())
	}
}

func TestRiskGroupsFacade(t *testing.T) {
	g, dem := figure2Demand()
	base, err := Reliability(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	// Put the two source links in one conduit.
	groups := []RiskGroup{{PFail: 0.1, Links: []EdgeID{0, 1}}}
	r, err := ReliabilityWithRiskGroups(g, dem, groups)
	if err != nil {
		t.Fatal(err)
	}
	if r >= base {
		t.Fatalf("correlated failures should cost reliability: %g vs %g", r, base)
	}
	est, err := RiskGroupMonteCarlo(g, dem, groups, 50000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Reliability-r) > 5*est.StdErr+1e-9 {
		t.Fatalf("MC %g vs exact %g", est.Reliability, r)
	}
}

func TestUnreliabilityISFacade(t *testing.T) {
	g, dem := figure2Demand()
	exact, err := Reliability(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	est, err := UnreliabilityIS(g, dem, 50000, 6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Reliability-(1-exact)) > 5*est.StdErr+1e-9 {
		t.Fatalf("IS %g ± %g vs exact U %g", est.Reliability, est.StdErr, 1-exact)
	}
}

func TestMulticastFacade(t *testing.T) {
	o, err := MultiTreeOverlay(6, 2, 2, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	all, err := MulticastReliability(o.G, o.Source, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	per, err := PerTargetReliability(o.G, o.Source, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range per {
		if all.Reliability > r+1e-9 {
			t.Fatalf("all-targets %g exceeds a marginal %g", all.Reliability, r)
		}
	}
	est, err := MulticastMonteCarlo(o.G, o.Source, nil, 2, 40000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Reliability-all.Reliability) > 5*est.StdErr+1e-9 {
		t.Fatalf("MC %g vs exact %g", est.Reliability, all.Reliability)
	}
}

func TestWriteDOTFacade(t *testing.T) {
	g, dem := figure2Demand()
	var sb strings.Builder
	if err := WriteDOT(&sb, g, DOTOptions{Demand: &dem}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Fatal("no DOT output")
	}
}
